"""Genuinely parallel Eclat via processes.

CPython's GIL prevents the paper's shared-memory thread parallelism from
showing real speedup in-process, so the *measured* scalability study runs
on the machine simulator.  This backend demonstrates that the paper's task
decomposition itself is sound on real hardware: it executes the same
top-level-prefix tasks (Section IV) across a process pool and produces
bit-identical frequent itemsets to the serial miner.

Each worker process builds the singleton verticals once (its private copy
of the "shared" base data — mirroring the paper's remark that every thread
generates its own transaction representation) and then mines whole
top-level classes; results are merged in the parent.

``schedule="worksteal"`` swaps the ``Pool.imap_unordered`` dispatch for
the deque scheduler (:mod:`repro.parallel.worksteal`) with nested task
spawning: a worker finishing a class task returns the stealable subtasks
it carved off (classes still above the spawn thresholds, named as
positions into the worker-local ordered singleton list), so fewer frequent
items than workers no longer caps parallelism.  A thief re-derives the
class verticals from its own singletons by walking ``combine`` down the
prefix chain — the representation-agnostic analogue of the shared-memory
backend's bit-row rebuild.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
import warnings
from queue import Empty
from typing import Iterable, Mapping

from repro.core.eclat import _Member, _mine_class, _State  # noqa: WPS450 - intentional reuse
from repro.core.result import MiningResult, resolve_min_support
from repro.datasets.transaction_db import TransactionDatabase
from repro.errors import ConfigurationError, ParallelExecutionError
from repro.parallel.worksteal import WorkStealScheduler, resolve_spawn_policy
from repro.representations import get_representation

#: Result-queue poll granularity of the worksteal dispatch loop (seconds);
#: also how often worker liveness is checked.
_WS_POLL_SECONDS = 0.05

# Worker-process globals, set once by the pool initializer so task payloads
# stay tiny (a single int per task).
_WORKER: dict = {}


def _init_worker(
    transactions: list, n_items: int, min_sup: int, representation: str,
    item_order: str, collect_obs: bool = False, live: bool = False,
    sample_interval: float | None = None,
) -> None:
    from repro.obs.procmerge import WorkerTelemetry

    telemetry = WorkerTelemetry(collect_obs)
    _WORKER["telemetry"] = telemetry
    _WORKER["tasks_done"] = 0
    _WORKER["busy_s"] = 0.0
    # Heartbeats cost a getrusage call plus a pickled dict per outcome
    # message; only pay that when the parent actually holds a tracker.
    _WORKER["live"] = live
    obs = telemetry.obs
    if obs is not None and sample_interval:
        # The daemon sampler runs for the worker's whole life; its "C"
        # samples sit in the telemetry sink and ship with each task's
        # snapshot onto this worker's pid lane.
        from repro.obs.sampler import ResourceSampler

        _WORKER["sampler"] = ResourceSampler(
            obs.sink, float(sample_interval)
        ).start()

    def build() -> None:
        db = TransactionDatabase(transactions, n_items=n_items, name="worker")
        rep = get_representation(representation)
        singletons = rep.build_singletons(db, min_support=min_sup)
        frequent = [
            (item, v)
            for item, v in enumerate(singletons) if v.support >= min_sup
        ]
        if item_order == "support":
            frequent.sort(key=lambda entry: (entry[1].support, entry[0]))
        _WORKER["rep"] = rep
        _WORKER["min_sup"] = min_sup
        _WORKER["members"] = [
            _Member((item,), vertical, index)
            for index, (item, vertical) in enumerate(frequent)
        ]

    if obs is not None:
        # Each worker rebuilds its private verticals (see module docstring);
        # the attach span ships with the first task's snapshot.
        with obs.sink.span("worker.attach", cat="setup"):
            build()
    else:
        build()


def _mine_toplevel_task(task_index: int) -> tuple[dict, dict | None, dict | None]:
    """Mine one top-level class: prefix = frequent item #task_index.

    Returns ``(itemsets, telemetry_snapshot_or_None, heartbeat_or_None)``;
    the parent merges the snapshot into its own ObsContext (see
    :mod:`repro.obs.procmerge`) and feeds the heartbeat (pid, tasks done,
    RSS, busy seconds) to the live progress tracker.  The heartbeat is
    ``None`` when the parent has no tracker.
    """
    from repro.obs.live import worker_heartbeat

    telemetry = _WORKER["telemetry"]
    obs = telemetry.obs
    rep = _WORKER["rep"]
    min_sup = _WORKER["min_sup"]
    members = _WORKER["members"]

    busy_start = time.perf_counter()
    result = MiningResult(
        dataset="worker", algorithm="eclat", representation=rep.name,
        min_support=min_sup, n_transactions=0,
    )
    state = _State(rep=rep, min_sup=min_sup, result=result, sink=_NullCollector())
    left = members[task_index]
    next_class = []
    for right in members[task_index + 1 :]:
        candidate = left.items + (right.items[-1],)
        vertical, _cost = rep.combine(left.vertical, right.vertical)
        if vertical.support >= min_sup:
            result.add(tuple(sorted(candidate)), vertical.support)
            next_class.append(_Member(candidate, vertical, -1))
    if next_class:
        _mine_class(state, next_class, 2)
    _WORKER["tasks_done"] += 1
    _WORKER["busy_s"] += time.perf_counter() - busy_start
    if obs is not None:
        obs.sink.wall_event(
            "task.eclat", busy_start, cat="mine",
            args={"task_id": task_index, "n_items": len(result.itemsets)},
        )
        obs.metrics.counter("worker.busy_s").inc(
            time.perf_counter() - busy_start
        )
    return (
        result.itemsets,
        telemetry.drain(),
        worker_heartbeat(_WORKER["tasks_done"], _WORKER["busy_s"])
        if _WORKER["live"] else None,
    )


class _NullCollector:
    def on_singletons(self, *args, **kwargs) -> None:
        pass

    def on_combine(self, *args, **kwargs) -> None:
        pass


# --------------------------------------------------------------------------
# Work-stealing path
# --------------------------------------------------------------------------


def _ws_rebuild(prefix: tuple, member_ids: tuple) -> dict:
    """Re-derive class-member verticals under ``prefix`` from singletons.

    Walks ``rep.combine`` down the prefix chain: after step ``k`` every
    tracked position ``j > prefix[k]`` holds the vertical of the class
    ``prefix[:k + 1]`` member ``j``.  Each step combines two members of
    the *same* class, which is the only contract representations like
    diffsets require — so the rebuild is correct for every registered
    representation, not just tidsets.  This work is the runtime cost of a
    migrated task (what the cost model prices as the steal payload).
    """
    rep = _WORKER["rep"]
    singles = _WORKER["members"]
    obs = _WORKER["telemetry"].obs
    rebuild_start = time.perf_counter() if obs is not None else 0.0
    verts = {
        i: singles[i].vertical for i in sorted(set(prefix) | set(member_ids))
    }
    for p in prefix:
        left = verts[p]
        for j in sorted(verts):
            if j > p:
                verts[j], _cost = rep.combine(left, verts[j])
    if obs is not None:
        obs.sink.wall_event(
            "task.rebuild", rebuild_start, cat="steal",
            args={"prefix_len": len(prefix), "n_members": len(member_ids)},
        )
    return {i: verts[i] for i in member_ids}


def _run_ws_task(body: tuple) -> tuple[dict, list]:
    """Execute one stealable class task; return (itemsets, spawned tasks).

    ``body`` is ``(prefix, member_ids)`` — positions into this worker's
    ordered frequent-singleton list.  The task joins ``member_ids[0]``
    against the rest under ``prefix``; the surviving child class spawns
    (one task per member position) while ``len(new_prefix) <= spawn_depth``
    and the class keeps ``>= spawn_min_members`` members, and is otherwise
    finished inline with the serial :func:`_mine_class` walk.
    """
    prefix, member_ids = body
    rep = _WORKER["rep"]
    min_sup = _WORKER["min_sup"]
    singles = _WORKER["members"]
    obs = _WORKER["telemetry"].obs
    busy_start = time.perf_counter() if obs is not None else 0.0

    result = MiningResult(
        dataset="worker", algorithm="eclat", representation=rep.name,
        min_support=min_sup, n_transactions=0,
    )
    spawned: list[tuple] = []
    if len(member_ids) >= 2:
        verts = _ws_rebuild(tuple(prefix), tuple(member_ids))
        head = member_ids[0]
        head_items = (
            tuple(singles[p].items[-1] for p in prefix)
            + (singles[head].items[-1],)
        )
        left = verts[head]
        kept: list[int] = []
        next_members: list[_Member] = []
        for m in member_ids[1:]:
            vertical, _cost = rep.combine(left, verts[m])
            if vertical.support >= min_sup:
                items = head_items + (singles[m].items[-1],)
                result.add(tuple(sorted(items)), vertical.support)
                kept.append(m)
                next_members.append(_Member(items, vertical, -1))
        new_prefix = tuple(prefix) + (head,)
        if len(next_members) >= 2:
            if (
                len(new_prefix) <= _WORKER["spawn_depth"]
                and len(kept) >= _WORKER["spawn_min_members"]
            ):
                spawned = [
                    (new_prefix, tuple(kept[j:]))
                    for j in range(len(kept) - 1)
                ]
            else:
                state = _State(
                    rep=rep, min_sup=min_sup, result=result,
                    sink=_NullCollector(),
                )
                _mine_class(state, next_members, len(head_items) + 1)
    if obs is not None:
        obs.sink.wall_event(
            "task.eclat_ws", busy_start, cat="mine",
            args={
                "prefix_len": len(prefix), "n_members": len(member_ids),
                "n_spawned": len(spawned),
            },
        )
        obs.metrics.counter("worker.busy_s").inc(
            time.perf_counter() - busy_start
        )
    return result.itemsets, spawned


def _ws_worker_main(
    worker_id: int,
    init_args: tuple,
    spawn_depth: int,
    spawn_min_members: int,
    task_queue,
    result_queue,
) -> None:
    """Worksteal worker loop: build singletons once, then drain tasks.

    Mirrors the shared-memory pool's protocol — at most one
    ``(task_id, body)`` in flight per worker, ``None`` to stop, outcomes
    ``("done", worker, task, itemsets, spawned, snapshot, heartbeat)`` or
    ``("error", worker, task, traceback)``.
    """
    from repro.obs.live import worker_heartbeat

    try:
        _init_worker(*init_args)
        _WORKER["spawn_depth"] = spawn_depth
        _WORKER["spawn_min_members"] = spawn_min_members
        telemetry = _WORKER["telemetry"]
        tasks_done = 0
        busy_total = 0.0
        wait_total = 0.0
        while True:
            wait_start = time.perf_counter()
            task = task_queue.get()
            if task is None:
                break
            task_id, body = task
            busy_start = time.perf_counter()
            wait_total += busy_start - wait_start
            try:
                itemsets, spawned = _run_ws_task(body)
            except Exception:
                result_queue.put(
                    ("error", worker_id, task_id, traceback.format_exc())
                )
                continue
            busy_total += time.perf_counter() - busy_start
            tasks_done += 1
            result_queue.put(
                ("done", worker_id, task_id, itemsets, spawned,
                 telemetry.drain(),
                 worker_heartbeat(tasks_done, busy_total, wait_total)
                 if _WORKER["live"] else None)
            )
    except (KeyboardInterrupt, EOFError, OSError):  # pragma: no cover
        pass  # parent tore the queues down; exit quietly


def _run_eclat_worksteal(
    result: MiningResult,
    init_args: tuple,
    n_singletons: int,
    n_workers: int,
    policy: tuple[int, int],
    obs,
    live=None,
) -> None:
    """Parent-side worksteal dispatch over mp.Process workers.

    The scheduler's deques live here (single orchestrator, exact
    termination: all deques empty and nothing in flight == done count
    reaching the grown task list).  Workers that die mid-task abort the
    run — this backend keeps the multiprocessing path's no-retry policy;
    the shared-memory backend is the fault-tolerant one.
    """
    ctx = (
        mp.get_context("fork")
        if "fork" in mp.get_all_start_methods() else mp.get_context()
    )
    payloads: list[tuple] = [
        ((), tuple(range(i, n_singletons))) for i in range(n_singletons - 1)
    ]
    if not payloads:
        return
    if live is not None:
        live.add_total(len(payloads))
    scheduler = WorkStealScheduler(n_workers)
    scheduler.seed(range(len(payloads)))
    result_queue = ctx.Queue()
    queues = [ctx.Queue() for _ in range(n_workers)]
    workers = []
    for worker_id in range(n_workers):
        process = ctx.Process(
            target=_ws_worker_main,
            args=(worker_id, init_args, policy[0], policy[1],
                  queues[worker_id], result_queue),
            daemon=True,
        )
        process.start()
        workers.append(process)

    assigned: dict[int, int] = {}
    lanes: dict[int, int] = {}
    seen_pids: set[int] = set()
    done = 0

    def dispatch(worker_id: int) -> None:
        if worker_id in assigned:
            return
        task_id = scheduler.acquire(worker_id)
        if task_id is None:
            return
        assigned[worker_id] = task_id
        queues[worker_id].put((task_id, payloads[task_id]))

    try:
        for worker_id in range(n_workers):
            dispatch(worker_id)
        while done < len(payloads):
            try:
                message = result_queue.get(timeout=_WS_POLL_SECONDS)
            except Empty:
                if live is not None:
                    live.write()  # keep elapsed/ETA fresh between results
                for worker_id, process in enumerate(workers):
                    if not process.is_alive():
                        task_id = assigned.get(worker_id)
                        raise ParallelExecutionError(
                            f"worksteal worker {worker_id} died (exitcode "
                            f"{process.exitcode}) holding task {task_id}"
                        )
                continue
            if message[0] == "error":
                _, worker_id, task_id, tb = message
                raise ParallelExecutionError(
                    f"worker {worker_id} failed on task {task_id}:\n{tb}"
                )
            _, worker_id, task_id, itemsets, spawned, snap, beat = message
            assigned.pop(worker_id, None)
            if spawned:
                first_id = len(payloads)
                payloads.extend(spawned)
                scheduler.spawn(
                    worker_id,
                    list(range(first_id, len(payloads))),
                    depth=len(spawned[0][0]),
                )
                if live is not None:
                    live.add_total(len(spawned))
            result.itemsets.update(itemsets)
            if obs is not None and snap is not None:
                _merge_task_snapshot(obs, snap, lanes, seen_pids)
            done += 1
            for idle_id in range(n_workers):
                dispatch(idle_id)
            if live is not None:
                live.heartbeat(worker_id, beat)
                live.task_done()
                live.scheduler_update(
                    **scheduler.live_snapshot(len(assigned))
                )
    finally:
        for queue in queues:
            try:
                queue.put_nowait(None)
            except Exception:  # pragma: no cover - queue already broken
                pass
        for process in workers:
            process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
        for queue in [*queues, result_queue]:
            try:
                queue.close()
                queue.cancel_join_thread()
            except Exception:  # pragma: no cover
                pass
        if obs is not None:
            scheduler.record_counters(obs, prefix="multiprocessing.worksteal")
            obs.metrics.gauge(
                "multiprocessing.load_balance.steal_fraction"
            ).set(scheduler.stats.steal_fraction())


def _merge_task_snapshot(obs, snap, lanes: dict, seen_pids: set) -> None:
    """Fold one worker snapshot into the parent on a per-pid lane.

    ``imap_unordered`` gives no stable worker slot, so lanes are numbered
    by first-seen pid order: the first pid to report becomes ``worker 0``.
    """
    from repro.obs.procmerge import merge_snapshot

    pid = snap.get("pid") if isinstance(snap, Mapping) else None
    prefix = lane_name = None
    if isinstance(pid, int):
        index = lanes.setdefault(pid, len(lanes))
        prefix = f"multiprocessing.worker{index}"
        lane_name = f"worker {index} (pid {pid})"
    merge_snapshot(
        obs, snap, prefix=prefix, lane_name=lane_name, seen_pids=seen_pids,
    )


def run_eclat_multiprocessing(
    db: TransactionDatabase,
    min_support: float | int,
    representation: str = "tidset",
    *,
    n_workers: int | None = None,
    item_order: str = "support",
    schedule: str | None = None,
    spawn_depth: int | None = None,
    spawn_min_members: int | None = None,
    obs=None,
    live=None,
) -> MiningResult:
    """Frequent itemsets via a process pool over top-level classes.

    Produces exactly the same itemset->support map as
    :func:`repro.core.eclat.eclat` with matching parameters.  This is the
    runner behind ``repro.mine(..., backend="multiprocessing")``; prefer
    that entry point.  With ``obs`` active, each worker ships a telemetry
    snapshot alongside its itemsets and the merged trace shows one lane
    per worker process.

    ``schedule="worksteal"`` enables nested task spawning balanced by the
    deque scheduler (``spawn_depth`` / ``spawn_min_members`` tune what
    spawns); the default is the paper's dynamic one-class-at-a-time
    dispatch via ``imap_unordered``.
    """
    if item_order not in ("support", "id"):
        raise ConfigurationError("item_order must be 'support' or 'id'")
    from repro.backends.shared_memory_backend import parse_schedule
    from repro.openmp.schedule import ECLAT_SCHEDULE

    spec = parse_schedule(schedule, ECLAT_SCHEDULE)
    if spec.kind not in ("dynamic", "worksteal"):
        raise ConfigurationError(
            "multiprocessing backend supports schedule 'dynamic' (default) "
            f"or 'worksteal', got {spec.kind!r}"
        )
    worksteal = spec.kind == "worksteal"
    if not worksteal and (spawn_depth is not None or spawn_min_members is not None):
        raise ConfigurationError(
            "spawn_depth/spawn_min_members require schedule='worksteal'"
        )
    policy = resolve_spawn_policy(spawn_depth, spawn_min_members)
    min_sup = resolve_min_support(db, min_support)
    n_workers = n_workers or max(1, (os.cpu_count() or 2) - 0)
    wall_start = time.perf_counter() if obs is not None else 0.0

    rep = get_representation(representation)
    result = MiningResult(
        dataset=db.name,
        algorithm="eclat",
        representation=rep.name,
        min_support=min_sup,
        n_transactions=db.n_transactions,
        backend="multiprocessing",
    )

    # Singletons in the parent: both the level-1 results and the task count.
    singletons = rep.build_singletons(db, min_support=min_sup)
    frequent_items = [
        item for item, v in enumerate(singletons) if v.support >= min_sup
    ]
    for item in frequent_items:
        result.add((item,), singletons[item].support)
    n_tasks = len(frequent_items)
    if obs is not None:
        obs.metrics.counter("eclat.toplevel.tasks").inc(n_tasks)
    if n_tasks == 0:
        return result

    lanes: dict[int, int] = {}
    seen_pids: set[int] = set()
    transactions = [t.tolist() for t in db]
    init_args = (transactions, db.n_items, min_sup, representation,
                 item_order, obs is not None, live is not None,
                 getattr(obs, "sample_interval", None))
    # Worksteal never clamps the team to the top-level task count — nested
    # spawns are exactly how surplus workers get fed (finding 4).
    workers = n_workers if worksteal else min(n_workers, n_tasks)
    try:
        if worksteal:
            _run_eclat_worksteal(
                result, init_args, n_tasks, workers, policy, obs, live=live
            )
        else:
            if live is not None:
                live.add_total(n_tasks)
            ctx = (
                mp.get_context("fork")
                if "fork" in mp.get_all_start_methods() else mp.get_context()
            )
            with ctx.Pool(
                processes=workers,
                initializer=_init_worker,
                initargs=init_args,
            ) as pool:
                # chunksize=1 mirrors the paper's schedule(dynamic, 1).
                for partial, snap, beat in pool.imap_unordered(
                    _mine_toplevel_task, range(n_tasks), chunksize=1
                ):
                    result.itemsets.update(partial)
                    if obs is not None and snap is not None:
                        _merge_task_snapshot(obs, snap, lanes, seen_pids)
                    if live is not None:
                        # imap gives no stable worker slot; lanes are
                        # numbered by first-seen pid order, same as the
                        # telemetry merge above.
                        pid = (
                            beat.get("pid")
                            if isinstance(beat, Mapping) else None
                        )
                        lane = (
                            lanes.setdefault(pid, len(lanes))
                            if isinstance(pid, int) else 0
                        )
                        live.heartbeat(lane, beat)
                        live.task_done()
    finally:
        if obs is not None:
            obs.sink.wall_event(
                "multiprocessing.mine", wall_start, cat="mine",
                args={"algorithm": "eclat", "tasks": n_tasks,
                      "workers": workers, "schedule": str(spec)},
            )
    return result


def eclat_multiprocessing(
    db: TransactionDatabase,
    min_support: float | int,
    representation: str = "tidset",
    n_workers: int | None = None,
    item_order: str = "support",
) -> MiningResult:
    """Deprecated alias for ``repro.mine(..., backend="multiprocessing")``."""
    warnings.warn(
        "eclat_multiprocessing() is deprecated; use repro.mine(db, "
        "algorithm='eclat', backend='multiprocessing', min_support=...) "
        "instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.engine import mine

    return mine(
        db,
        algorithm="eclat",
        representation=representation,
        backend="multiprocessing",
        min_support=min_support,
        n_workers=n_workers,
        item_order=item_order,
    )


def chunked(indices: Iterable[int], size: int) -> list[list[int]]:
    """Split task indices into fixed-size chunks (exposed for tests)."""
    if size < 1:
        raise ConfigurationError("chunk size must be >= 1")
    block: list[int] = []
    out: list[list[int]] = []
    for i in indices:
        block.append(i)
        if len(block) == size:
            out.append(block)
            block = []
    if block:
        out.append(block)
    return out
