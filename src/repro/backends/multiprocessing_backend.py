"""Genuinely parallel Eclat via processes.

CPython's GIL prevents the paper's shared-memory thread parallelism from
showing real speedup in-process, so the *measured* scalability study runs
on the machine simulator.  This backend demonstrates that the paper's task
decomposition itself is sound on real hardware: it executes the same
top-level-prefix tasks (Section IV) across a process pool and produces
bit-identical frequent itemsets to the serial miner.

Each worker process builds the singleton verticals once (its private copy
of the "shared" base data — mirroring the paper's remark that every thread
generates its own transaction representation) and then mines whole
top-level classes; results are merged in the parent.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import warnings
from typing import Iterable, Mapping

from repro.core.eclat import _Member, _mine_class, _State  # noqa: WPS450 - intentional reuse
from repro.core.result import MiningResult, resolve_min_support
from repro.datasets.transaction_db import TransactionDatabase
from repro.errors import ConfigurationError
from repro.representations import get_representation

# Worker-process globals, set once by the pool initializer so task payloads
# stay tiny (a single int per task).
_WORKER: dict = {}


def _init_worker(
    transactions: list, n_items: int, min_sup: int, representation: str,
    item_order: str, collect_obs: bool = False,
) -> None:
    from repro.obs.procmerge import WorkerTelemetry

    telemetry = WorkerTelemetry(collect_obs)
    _WORKER["telemetry"] = telemetry
    obs = telemetry.obs

    def build() -> None:
        db = TransactionDatabase(transactions, n_items=n_items, name="worker")
        rep = get_representation(representation)
        singletons = rep.build_singletons(db, min_support=min_sup)
        frequent = [
            (item, v)
            for item, v in enumerate(singletons) if v.support >= min_sup
        ]
        if item_order == "support":
            frequent.sort(key=lambda entry: (entry[1].support, entry[0]))
        _WORKER["rep"] = rep
        _WORKER["min_sup"] = min_sup
        _WORKER["members"] = [
            _Member((item,), vertical, index)
            for index, (item, vertical) in enumerate(frequent)
        ]

    if obs is not None:
        # Each worker rebuilds its private verticals (see module docstring);
        # the attach span ships with the first task's snapshot.
        with obs.sink.span("worker.attach", cat="setup"):
            build()
    else:
        build()


def _mine_toplevel_task(task_index: int) -> tuple[dict, dict | None]:
    """Mine one top-level class: prefix = frequent item #task_index.

    Returns ``(itemsets, telemetry_snapshot_or_None)``; the parent merges
    the snapshot into its own ObsContext (see :mod:`repro.obs.procmerge`).
    """
    telemetry = _WORKER["telemetry"]
    obs = telemetry.obs
    rep = _WORKER["rep"]
    min_sup = _WORKER["min_sup"]
    members = _WORKER["members"]

    busy_start = time.perf_counter() if obs is not None else 0.0
    result = MiningResult(
        dataset="worker", algorithm="eclat", representation=rep.name,
        min_support=min_sup, n_transactions=0,
    )
    state = _State(rep=rep, min_sup=min_sup, result=result, sink=_NullCollector())
    left = members[task_index]
    next_class = []
    for right in members[task_index + 1 :]:
        candidate = left.items + (right.items[-1],)
        vertical, _cost = rep.combine(left.vertical, right.vertical)
        if vertical.support >= min_sup:
            result.add(tuple(sorted(candidate)), vertical.support)
            next_class.append(_Member(candidate, vertical, -1))
    if next_class:
        _mine_class(state, next_class, 2)
    if obs is not None:
        obs.sink.wall_event(
            "task.eclat", busy_start, cat="mine",
            args={"task_id": task_index, "n_items": len(result.itemsets)},
        )
        obs.metrics.counter("worker.busy_s").inc(
            time.perf_counter() - busy_start
        )
    return result.itemsets, telemetry.drain()


class _NullCollector:
    def on_singletons(self, *args, **kwargs) -> None:
        pass

    def on_combine(self, *args, **kwargs) -> None:
        pass


def _merge_task_snapshot(obs, snap, lanes: dict, seen_pids: set) -> None:
    """Fold one worker snapshot into the parent on a per-pid lane.

    ``imap_unordered`` gives no stable worker slot, so lanes are numbered
    by first-seen pid order: the first pid to report becomes ``worker 0``.
    """
    from repro.obs.procmerge import merge_snapshot

    pid = snap.get("pid") if isinstance(snap, Mapping) else None
    prefix = lane_name = None
    if isinstance(pid, int):
        index = lanes.setdefault(pid, len(lanes))
        prefix = f"multiprocessing.worker{index}"
        lane_name = f"worker {index} (pid {pid})"
    merge_snapshot(
        obs, snap, prefix=prefix, lane_name=lane_name, seen_pids=seen_pids,
    )


def run_eclat_multiprocessing(
    db: TransactionDatabase,
    min_support: float | int,
    representation: str = "tidset",
    *,
    n_workers: int | None = None,
    item_order: str = "support",
    obs=None,
) -> MiningResult:
    """Frequent itemsets via a process pool over top-level classes.

    Produces exactly the same itemset->support map as
    :func:`repro.core.eclat.eclat` with matching parameters.  This is the
    runner behind ``repro.mine(..., backend="multiprocessing")``; prefer
    that entry point.  With ``obs`` active, each worker ships a telemetry
    snapshot alongside its itemsets and the merged trace shows one lane
    per worker process.
    """
    if item_order not in ("support", "id"):
        raise ConfigurationError("item_order must be 'support' or 'id'")
    min_sup = resolve_min_support(db, min_support)
    n_workers = n_workers or max(1, (os.cpu_count() or 2) - 0)
    wall_start = time.perf_counter() if obs is not None else 0.0

    rep = get_representation(representation)
    result = MiningResult(
        dataset=db.name,
        algorithm="eclat",
        representation=rep.name,
        min_support=min_sup,
        n_transactions=db.n_transactions,
        backend="multiprocessing",
    )

    # Singletons in the parent: both the level-1 results and the task count.
    singletons = rep.build_singletons(db, min_support=min_sup)
    frequent_items = [
        item for item, v in enumerate(singletons) if v.support >= min_sup
    ]
    for item in frequent_items:
        result.add((item,), singletons[item].support)
    n_tasks = len(frequent_items)
    if obs is not None:
        obs.metrics.counter("eclat.toplevel.tasks").inc(n_tasks)
    if n_tasks == 0:
        return result

    lanes: dict[int, int] = {}
    seen_pids: set[int] = set()
    transactions = [t.tolist() for t in db]
    ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp.get_context()
    try:
        with ctx.Pool(
            processes=min(n_workers, n_tasks),
            initializer=_init_worker,
            initargs=(transactions, db.n_items, min_sup, representation,
                      item_order, obs is not None),
        ) as pool:
            # chunksize=1 mirrors the paper's schedule(dynamic, 1).
            for partial, snap in pool.imap_unordered(
                _mine_toplevel_task, range(n_tasks), chunksize=1
            ):
                result.itemsets.update(partial)
                if obs is not None and snap is not None:
                    _merge_task_snapshot(obs, snap, lanes, seen_pids)
    finally:
        if obs is not None:
            obs.sink.wall_event(
                "multiprocessing.mine", wall_start, cat="mine",
                args={"algorithm": "eclat", "tasks": n_tasks,
                      "workers": min(n_workers, n_tasks)},
            )
    return result


def eclat_multiprocessing(
    db: TransactionDatabase,
    min_support: float | int,
    representation: str = "tidset",
    n_workers: int | None = None,
    item_order: str = "support",
) -> MiningResult:
    """Deprecated alias for ``repro.mine(..., backend="multiprocessing")``."""
    warnings.warn(
        "eclat_multiprocessing() is deprecated; use repro.mine(db, "
        "algorithm='eclat', backend='multiprocessing', min_support=...) "
        "instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.engine import mine

    return mine(
        db,
        algorithm="eclat",
        representation=representation,
        backend="multiprocessing",
        min_support=min_support,
        n_workers=n_workers,
        item_order=item_order,
    )


def chunked(indices: Iterable[int], size: int) -> list[list[int]]:
    """Split task indices into fixed-size chunks (exposed for tests)."""
    if size < 1:
        raise ConfigurationError("chunk size must be >= 1")
    block: list[int] = []
    out: list[list[int]] = []
    for i in indices:
        block.append(i)
        if len(block) == size:
            out.append(block)
            block = []
    if block:
        out.append(block)
    return out
