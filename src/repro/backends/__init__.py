"""Execution backends.

Backends are registered per algorithm in :mod:`repro.engine.registry` and
selected through ``repro.mine(..., backend=...)``; the registry helpers are
re-exported here so ``repro.backends.supported_combinations()`` answers
"what can run where".  The legacy entry points :func:`mine_serial` and
:func:`eclat_multiprocessing` are deprecated shims over the engine.
"""

from repro.backends.serial import mine_serial
from repro.backends.multiprocessing_backend import (
    eclat_multiprocessing,
    run_eclat_multiprocessing,
)
from repro.backends.shared_memory_backend import (
    run_apriori_shared_memory,
    run_eclat_shared_memory,
)
from repro.engine import (
    available_algorithms,
    available_backends,
    register_backend,
    supported_combinations,
)

__all__ = [
    "mine_serial",
    "eclat_multiprocessing",
    "run_eclat_multiprocessing",
    "run_apriori_shared_memory",
    "run_eclat_shared_memory",
    "available_backends",
    "available_algorithms",
    "register_backend",
    "supported_combinations",
]
