"""Execution backends: serial reference and real process parallelism."""

from repro.backends.serial import mine_serial
from repro.backends.multiprocessing_backend import eclat_multiprocessing

__all__ = ["mine_serial", "eclat_multiprocessing"]
