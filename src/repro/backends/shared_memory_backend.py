"""Zero-copy shared-memory parallel backend over the NumPy bitvector kernels.

The multiprocessing backend pickles tidset payloads to every worker — the
exact copy-across-the-interconnect anti-pattern the paper diagnoses.  This
backend instead implements the paper's ownership model on real hardware:
the packed generation-1 bit matrix (``pack_database``) is placed **once**
in a :class:`multiprocessing.shared_memory.SharedMemory` block, and every
worker process attaches a read-only NumPy *view* of it — zero copies, no
per-worker rebuild, no serialized base data.  Only tiny task descriptors
and the mined (itemset → support) fragments cross process boundaries.

Work is scheduled through the paper's OpenMP clause semantics
(:mod:`repro.openmp.schedule`):

* **Eclat** runs one task per top-level equivalence class under
  ``schedule(dynamic, 1)`` (Section IV) — workers pull classes from a
  shared queue as they free up, the smallest-chunk dynamic schedule that
  minimizes load imbalance;
* **Apriori** counts each candidate generation in contiguous ranges under
  ``schedule(static)`` (Section III) — ranges are pre-assigned to workers
  through per-worker queues, one barrier per generation;
* **worksteal** (``schedule="worksteal"``) replaces the shared queue with
  the :class:`repro.parallel.worksteal.WorkStealScheduler`: per-worker
  deques, LIFO pop, FIFO steal-half.  Eclat tasks become *nested* — a
  worker finishing a class task returns the stealable subtasks it spawned
  (equivalence classes still above the ``spawn_depth`` /
  ``spawn_min_members`` thresholds, named as positions into the shared
  read-only matrix), so a dataset with fewer frequent items than workers
  can still saturate the pool (the paper's finding-4 ceiling); Apriori
  gets finer stealable candidate-range chunks.  The deques live
  parent-side, preserving the exact fault-attribution ledger below.

Robustness: the parent dispatches at most one task at a time to each
worker's private queue, so the assignment ledger lives parent-side and a
task can never be lost to a crash — a worker that dies (or exceeds the
per-task timeout) is respawned and its in-flight task retried up to a
bounded number of attempts; the shared-memory segment is unlinked on every
exit path, success or failure.

Results are bit-identical to the serial miners; the equivalence-matrix
tests assert as much.  Entry point: ``repro.mine(..., backend="shared_memory")``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing import shared_memory
from queue import Empty

import numpy as np

from repro.core.candidate_gen import generate_candidates
from repro.core.itemset import Itemset
from repro.core.result import MiningResult, resolve_min_support
from repro.datasets.transaction_db import TransactionDatabase
from repro.errors import ConfigurationError, ParallelExecutionError
from repro.openmp.schedule import (
    APRIORI_SCHEDULE,
    ECLAT_SCHEDULE,
    ScheduleSpec,
    chunk_boundaries,
)
from repro.parallel.worksteal import WorkStealScheduler, resolve_spawn_policy
from repro.representations.bitvector_numpy import (
    pack_database,
    popcount_rows,
)

#: Marks a task slot whose result has not arrived yet (``{}`` is a valid
#: result, so ``None`` cannot be the sentinel).
_UNSET = object()

#: Seconds the orchestration loop blocks on the result queue per iteration;
#: also the liveness/timeout polling granularity.
_POLL_SECONDS = 0.05

#: Seconds to wait for a worker to exit cleanly at shutdown before killing it.
_JOIN_SECONDS = 2.0


def parse_schedule(value: "ScheduleSpec | str | None", default: ScheduleSpec) -> ScheduleSpec:
    """Resolve a ``schedule`` option: spec, ``"kind[,chunk]"`` string, or None."""
    if value is None:
        return default
    if isinstance(value, ScheduleSpec):
        return value
    if not isinstance(value, str):
        raise ConfigurationError(
            f"schedule must be a ScheduleSpec or 'kind[,chunk]' string, "
            f"got {value!r}"
        )
    kind, _, chunk_text = value.partition(",")
    kind = kind.strip()
    chunk: int | None = None
    if chunk_text.strip():
        try:
            chunk = int(chunk_text)
        except ValueError:
            raise ConfigurationError(
                f"invalid schedule chunk size {chunk_text!r} in {value!r}"
            ) from None
    return ScheduleSpec(kind, chunk)  # type: ignore[arg-type]


# --------------------------------------------------------------------------
# Shared-memory segment helpers
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class _ShmSpec:
    """Everything a worker needs to attach a zero-copy view of the matrix."""

    name: str
    shape: tuple[int, int]
    dtype: str


def _attach(spec: _ShmSpec) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    """Attach the segment and build a read-only NumPy view over it.

    Every ``multiprocessing`` child — fork, spawn, or forkserver — inherits
    the *parent's* resource-tracker fd, and the tracker stores names as a
    set, so the re-register this attach performs is a harmless no-op and
    needs no undoing.  (Unregistering here would strip the parent's own
    entry and break its unlink-time bookkeeping.)  The pool's parent
    process remains the sole owner of the segment's lifetime.
    """
    shm = shared_memory.SharedMemory(name=spec.name)
    matrix = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    matrix.flags.writeable = False
    return shm, matrix


# --------------------------------------------------------------------------
# Worker process
# --------------------------------------------------------------------------


def _run_eclat_chunk(matrix: np.ndarray, init: dict, indices: list[int], obs):
    """Mine the subtrees of the given top-level class members."""
    from repro.engine.vectorized import mine_toplevel_class

    itemsets: list[Itemset] = init["itemsets"]
    result = MiningResult(
        dataset="shm-worker", algorithm="eclat",
        representation="bitvector_numpy", min_support=init["min_sup"],
        n_transactions=0,
    )
    for index in indices:
        mine_toplevel_class(
            result, itemsets, matrix, index, init["min_sup"], obs
        )
    return result.itemsets


def _run_eclat_ws_task(matrix: np.ndarray, init: dict, body, obs):
    """Execute one stealable Eclat task; return (fragments, spawned tasks).

    ``body`` is ``(prefix, members)`` — positions into the shared ordered
    singleton matrix (see :func:`repro.engine.vectorized.run_worksteal_task`).
    The spawned descriptors travel back with the result so the parent-side
    scheduler can make them stealable; the worker never blocks on them.
    """
    from repro.engine.vectorized import run_worksteal_task

    prefix, members = body
    result = MiningResult(
        dataset="shm-worker", algorithm="eclat",
        representation="bitvector_numpy", min_support=init["min_sup"],
        n_transactions=0,
    )
    spawned = run_worksteal_task(
        result, init["itemsets"], matrix, tuple(prefix), tuple(members),
        init["min_sup"], init["spawn_depth"], init["spawn_min_members"], obs,
    )
    return result.itemsets, spawned


def _run_apriori_chunk(matrix: np.ndarray, init: dict, candidates: list[Itemset], obs):
    """Support-count one candidate range by k-way AND over singleton rows.

    Workers never hold generation-(k-1) verticals — every candidate's
    support comes straight from the shared base matrix, so the only data a
    task needs beyond the zero-copy view is its candidate item tuples.
    """
    idx = np.asarray(candidates, dtype=np.int64)  # (m, k)
    rows = matrix[idx]
    children = np.bitwise_and.reduce(rows, axis=1)
    supports = popcount_rows(children)
    if obs is not None:
        m, k = idx.shape
        n_bytes = matrix.shape[1]
        metrics = obs.metrics
        metrics.counter("apriori.shared_memory.batches").inc()
        metrics.counter("mine.intersections").inc(m * (k - 1))
        metrics.counter("mine.intersection_read_bytes").inc(m * k * n_bytes)
        metrics.counter("mine.bytes_written").inc(m * n_bytes)
    return supports.tolist()


def _worker_main(
    worker_id: int,
    spec: _ShmSpec,
    init: dict,
    task_queue,
    result_queue,
) -> None:
    """Worker loop: attach the shared matrix once, then drain tasks.

    The parent dispatches at most one ``(task_id, payload)`` at a time to
    this worker's private queue and tracks the assignment on its side, so
    the worker only ever reports outcomes: ``("done", worker, task,
    output, snapshot, heartbeat)`` or ``("error", worker, task, traceback,
    snapshot, heartbeat)``.  A ``None`` sentinel ends the loop.  The
    heartbeat (:func:`repro.obs.live.worker_heartbeat`: pid, tasks done,
    peak RSS, busy/wait seconds) rides every outcome so the parent-side
    stall watchdog always knows when this worker last made progress; when
    ``init["stall_dump_path"]`` is set the worker also registers a
    ``faulthandler`` traceback dump on ``SIGUSR1`` so the watchdog can ask
    a stalled worker where it is stuck.

    When the parent carries an ObsContext (``init["collect_obs"]``), the
    worker records its own telemetry — an attach span, a queue-wait span
    and a compute span per task, plus kernel counters and ``worker.busy_s``
    / ``worker.wait_s`` totals — into a :class:`WorkerTelemetry` drained
    into the snapshot shipped with every outcome.  A worker killed mid-task
    ships nothing for that task; the parent merges only what arrived, so
    partial telemetry never corrupts the trace.
    """
    from repro.obs.live import install_stack_dump_handler, worker_heartbeat
    from repro.obs.procmerge import WorkerTelemetry

    shm = None
    matrix = None
    telemetry = WorkerTelemetry(bool(init.get("collect_obs", False)))
    obs = telemetry.obs
    # Heartbeats cost a getrusage per outcome; ship them only when the
    # parent actually holds a tracker (same zero-overhead-when-off
    # discipline as ``obs is None``).
    live_enabled = bool(init.get("live", False))
    if init.get("stall_dump_path"):
        install_stack_dump_handler(init["stall_dump_path"])
    tasks_done = 0
    busy_total = 0.0
    wait_total = 0.0
    sampler = None
    try:
        if obs is not None:
            with obs.sink.span("worker.attach", cat="setup"):
                shm, matrix = _attach(spec)
        else:
            shm, matrix = _attach(spec)
        if obs is not None and init.get("sample_interval"):
            from repro.obs.sampler import ResourceSampler

            sampler = ResourceSampler(
                obs.sink, float(init["sample_interval"])
            ).start()
        fault = init.get("fault") or {}
        while True:
            wait_start = time.perf_counter()
            task = task_queue.get()
            if task is None:
                break
            task_id, payload = task
            if fault.get("kill_task") == task_id:
                os._exit(13)  # fault injection: die mid-task, unannounced
            if fault.get("hang_task") == task_id:
                time.sleep(fault.get("hang_seconds", 3600.0))
            busy_start = time.perf_counter()
            wait_total += busy_start - wait_start
            if obs is not None:
                obs.sink.wall_event(
                    "task.wait", wait_start, busy_start, cat="wait",
                    args={"task_id": task_id},
                )
                obs.metrics.counter("worker.wait_s").inc(
                    busy_start - wait_start
                )
            try:
                kind, body = payload
                if fault.get("slow_task") == task_id:
                    # Fault injection: stretch this task's compute window.
                    # The sleep sits inside the task span, so run anatomy
                    # must name this task as the critical-path bottleneck.
                    time.sleep(float(fault.get("slow_seconds", 0.25)))
                if kind == "eclat":
                    out = _run_eclat_chunk(matrix, init, body, obs)
                elif kind == "eclat_ws":
                    out = _run_eclat_ws_task(matrix, init, body, obs)
                else:
                    out = _run_apriori_chunk(matrix, init, body, obs)
            except Exception:
                if obs is not None:
                    obs.sink.wall_event(
                        f"task.{payload[0]}", busy_start, cat="task",
                        args={"task_id": task_id, "error": True},
                    )
                busy_total += time.perf_counter() - busy_start
                result_queue.put(
                    ("error", worker_id, task_id, traceback.format_exc(),
                     telemetry.drain(),
                     worker_heartbeat(tasks_done, busy_total, wait_total)
                     if live_enabled else None)
                )
                continue
            busy_end = time.perf_counter()
            busy_total += busy_end - busy_start
            tasks_done += 1
            if obs is not None:
                obs.sink.wall_event(
                    f"task.{kind}", busy_start, busy_end, cat="task",
                    args={"task_id": task_id, "n_items": len(body)},
                )
                obs.metrics.counter("worker.busy_s").inc(busy_end - busy_start)
            result_queue.put(
                ("done", worker_id, task_id, out, telemetry.drain(),
                 worker_heartbeat(tasks_done, busy_total, wait_total)
                 if live_enabled else None)
            )
    except (KeyboardInterrupt, EOFError, OSError):  # pragma: no cover
        pass  # parent tore the queues down; exit quietly
    finally:
        if sampler is not None:
            sampler.stop()
        if shm is not None:
            matrix = None  # release the exported buffer before closing
            shm.close()


# --------------------------------------------------------------------------
# Parent-side pool
# --------------------------------------------------------------------------


class SharedMemoryPool:
    """A worker pool over one shared, read-only packed bit matrix.

    The pool owns the :class:`SharedMemory` segment lifecycle (create →
    copy once → unlink in :meth:`shutdown`, which ``__exit__`` guarantees),
    the worker processes, and the task/result plumbing.  ``run()`` may be
    called repeatedly — Apriori reuses one pool across generations so
    workers attach exactly once.

    Every worker has a private task queue and the parent dispatches **at
    most one task at a time** to each — the assignment ledger therefore
    lives entirely parent-side, which is what makes fault handling exact: a
    dead or timed-out worker's one in-flight task is known without any
    cooperation from the (possibly gone) worker.  ``spec.kind == "static"``
    pre-assigns tasks to owners (OpenMP static ownership) and a worker only
    ever receives its own; dynamic and guided feed workers from one shared
    pending deque in completion order.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        init: dict,
        n_workers: int,
        spec: ScheduleSpec,
        *,
        task_timeout: float | None = None,
        max_task_retries: int = 2,
        obs=None,
        live=None,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        if task_timeout is not None and task_timeout <= 0:
            raise ConfigurationError("task_timeout must be positive or None")
        start_methods = mp.get_all_start_methods()
        self._ctx = mp.get_context(
            "fork" if "fork" in start_methods else start_methods[0]
        )
        self.n_workers = n_workers
        self._init = init
        self._spec = spec
        self._static = spec.kind == "static"
        self._ws_mode = spec.kind == "worksteal"
        #: Live only during a worksteal-mode run(); rebuilt per run so the
        #: steal stats describe exactly one mining pass.
        self._ws: WorkStealScheduler | None = None
        self._task_timeout = task_timeout
        self._max_task_retries = max_task_retries
        self._obs = obs
        #: Optional :class:`repro.obs.live.ProgressTracker` — the live
        #: status plane (progress fractions, heartbeats, stall watchdog).
        self._live = live
        #: Last heartbeat per worker (monotonic): set at spawn, refreshed
        #: by every outcome message.  Feeds the stall watchdog.
        self._last_beat: dict[int, float] = {}
        #: Workers already flagged as stalled (one dump per stall episode).
        self._stall_flagged: set[int] = set()
        self._shm: shared_memory.SharedMemory | None = None
        self._closed = False
        self._respawns = 0
        # A worker crashing before it ever claims a task (e.g. it cannot
        # even import/attach) would otherwise respawn forever; this bounds
        # total respawns across the pool's lifetime.
        self._max_respawns = n_workers * (max_task_retries + 1)

        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, matrix.nbytes)
        )
        shared_view = np.ndarray(
            matrix.shape, dtype=matrix.dtype, buffer=self._shm.buf
        )
        shared_view[...] = matrix
        self._spec_shm = _ShmSpec(
            name=self._shm.name,
            shape=tuple(matrix.shape),  # type: ignore[arg-type]
            dtype=matrix.dtype.str,
        )
        del shared_view  # the segment must hold the only exported buffer

        self._result_queue = self._ctx.Queue()
        self._queues = [self._ctx.Queue() for _ in range(n_workers)]
        self._workers: list = [None] * n_workers
        #: Worker OS pids already given a named Chrome lane (procmerge).
        self._seen_pids: set[int] = set()
        #: Wall seconds spent inside run() — the load-balance makespan.
        self._run_seconds = 0.0
        for worker_id in range(n_workers):
            self._spawn(worker_id)
        if obs is not None:
            obs.metrics.gauge("shared_memory.n_workers").set(n_workers)
            obs.metrics.gauge("shared_memory.base_bytes").set(matrix.nbytes)
            if obs.sink.enabled:
                obs.sink.set_process_name(0, "parent (dispatch + host spans)")
                for worker_id in range(n_workers):
                    obs.sink.set_thread_name(
                        0, worker_id + 1, f"dispatch -> worker {worker_id}"
                    )

    # -- lifecycle ---------------------------------------------------------

    def _spawn(self, worker_id: int, *, respawn: bool = False) -> None:
        init = self._init
        if respawn:
            self._respawns += 1
            if self._respawns > self._max_respawns:
                raise ParallelExecutionError(
                    f"respawned workers {self._respawns} times (cap "
                    f"{self._max_respawns}); workers are dying faster than "
                    "they complete tasks"
                )
            # Respawned workers never re-run fault injection: the retried
            # task must succeed on a healthy process.
            init = {k: v for k, v in init.items() if k != "fault"}
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id, self._spec_shm, init,
                self._queues[worker_id], self._result_queue,
            ),
            daemon=True,
        )
        process.start()
        self._workers[worker_id] = process
        # A fresh process starts its heartbeat clock (and stall slate) clean.
        self._last_beat[worker_id] = time.monotonic()
        self._stall_flagged.discard(worker_id)
        if respawn and self._obs is not None:
            self._obs.metrics.counter("shared_memory.workers.respawned").inc()

    def __enter__(self) -> "SharedMemoryPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Stop workers and unlink the segment.  Idempotent, never raises."""
        if self._closed:
            return
        self._closed = True
        try:
            for queue in self._queues:
                self._put_nowait(queue, None)
            deadline = time.monotonic() + _JOIN_SECONDS
            for process in self._workers:
                if process is None:
                    continue
                process.join(timeout=max(0.0, deadline - time.monotonic()))
                if process.is_alive():
                    process.kill()
                    process.join(timeout=_JOIN_SECONDS)
        finally:
            for queue in self._queues:
                try:
                    queue.close()
                    queue.cancel_join_thread()
                except Exception:  # pragma: no cover
                    pass
            try:
                self._result_queue.close()
                self._result_queue.cancel_join_thread()
            except Exception:  # pragma: no cover
                pass
            if self._shm is not None:
                try:
                    self._shm.close()
                except Exception:  # pragma: no cover
                    pass
                try:
                    self._shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
                self._shm = None

    @staticmethod
    def _put_nowait(queue, item) -> None:
        try:
            queue.put_nowait(item)
        except Exception:  # pragma: no cover - queue already broken
            pass

    # -- task execution ----------------------------------------------------

    def static_owners(self, n_chunks: int) -> list[int]:
        """OpenMP static ownership of chunk *k* for this pool's team size.

        Without a clause chunk size the boundaries are one contiguous block
        per thread in thread order; with one, chunks are dealt round-robin.
        """
        if self._spec.chunk_size is None:
            return [min(k, self.n_workers - 1) for k in range(n_chunks)]
        return [k % self.n_workers for k in range(n_chunks)]

    def run(self, payloads: list, owners: list[int] | None = None) -> list:
        """Execute every payload; return outputs in payload order.

        A dead worker's in-flight task (known exactly, since dispatch is
        parent-side and one-at-a-time) is put back at the head of its
        pending deque and the worker respawned; a task that exceeds
        ``task_timeout`` gets its worker killed and is retried the same
        way.  More than ``max_task_retries`` retries of one task raises
        :class:`ParallelExecutionError` (after cleanup via the context
        manager).  Stale duplicate ``done`` messages (a kill racing a
        result already in the pipe) are deduplicated by task id.
        """
        if self._closed:
            raise ParallelExecutionError("pool is already shut down")
        n_tasks = len(payloads)
        if n_tasks == 0:
            return []
        if self._static and owners is None:
            owners = self.static_owners(n_tasks)

        self._payloads = payloads
        self._owners = owners
        if self._ws_mode:
            self._ws = WorkStealScheduler(self.n_workers)
            self._ws.seed(range(n_tasks))
        elif self._static:
            assert owners is not None
            self._pending = [deque() for _ in range(self.n_workers)]
            for task_id, owner in enumerate(owners):
                self._pending[owner].append(task_id)
        else:
            self._pending = deque(range(n_tasks))
        # worker -> (task, dispatched-at monotonic, dispatched-at perf);
        # the single source of truth for what is in flight.
        self._assigned: dict[int, tuple[int, float, float]] = {}
        outputs: list = [_UNSET] * n_tasks
        retries: dict[int, int] = {}
        done = 0

        run_start = time.perf_counter()
        try:
            for worker_id in range(self.n_workers):
                self._dispatch(worker_id)
            # In worksteal mode completed tasks may spawn new ones, so the
            # task count is re-read every pass (len(self._payloads) grows).
            while done < len(self._payloads):
                try:
                    message = self._result_queue.get(timeout=_POLL_SECONDS)
                except Empty:
                    message = None
                    if self._live is not None:
                        # No result this poll; still refresh elapsed/ETA so
                        # `obs watch` sees a live document, not a stale one.
                        self._live.write()
                if message is not None:
                    kind = message[0]
                    if kind == "done":
                        _, worker_id, task_id, out, snapshot, beat = message
                        self._note_beat(worker_id, beat)
                        held = self._assigned.get(worker_id)
                        dispatched_perf = None
                        if held is not None and held[0] == task_id:
                            dispatched_perf = held[2]
                            del self._assigned[worker_id]
                        if outputs[task_id] is _UNSET:
                            if (
                                self._ws_mode
                                and self._payloads[task_id][0] == "eclat_ws"
                            ):
                                out, spawned = out
                                # Registered only on the FIRST completion of
                                # this task id: a stale duplicate "done" (a
                                # kill racing a result already in the pipe)
                                # must not re-spawn the subtree.
                                self._register_spawned(
                                    worker_id, spawned, outputs
                                )
                            outputs[task_id] = out
                            done += 1
                            self._merge_result(
                                worker_id, task_id, snapshot, dispatched_perf
                            )
                            if self._live is not None:
                                # The heartbeat already carried the worker's
                                # own task count; only global progress moves.
                                self._live.task_done()
                        self._dispatch(worker_id)
                    else:  # "error": a worker raised — deterministic, no retry
                        _, worker_id, task_id, tb, snapshot, beat = message
                        self._note_beat(worker_id, beat)
                        # Keep whatever telemetry the failing worker managed
                        # to record; the trace must survive the abort.
                        self._merge_result(worker_id, task_id, snapshot, None)
                        raise ParallelExecutionError(
                            f"worker {worker_id} failed on task {task_id}:"
                            f"\n{tb}"
                        )
                self._police(retries, outputs)
        finally:
            self._run_seconds += time.perf_counter() - run_start
        return outputs

    def _register_spawned(
        self, worker_id: int, spawned: list, outputs: list
    ) -> None:
        """Adopt tasks a worker spawned: new ids on *its* scheduler deque.

        The spawner's deque (not a shared queue) is the work-stealing
        invariant — the spawning worker keeps depth-first locality on its
        own subtree and idle workers steal from the other end.  Newly
        spawned work may unblock workers that found every deque empty a
        moment ago, so all idle workers are re-offered a task.
        """
        if not spawned:
            return
        assert self._ws is not None
        first_id = len(self._payloads)
        for body in spawned:
            self._payloads.append(("eclat_ws", body))
            outputs.append(_UNSET)
        self._ws.spawn(
            worker_id,
            list(range(first_id, len(self._payloads))),
            depth=len(spawned[0][0]),
        )
        if self._live is not None:
            self._live.add_total(len(spawned))
        for idle_id in range(self.n_workers):
            self._dispatch(idle_id)

    def _dispatch(self, worker_id: int) -> None:
        """Hand the worker its next pending task, if idle and any remain."""
        if worker_id in self._assigned:
            return
        if self._ws_mode:
            assert self._ws is not None
            task_id = self._ws.acquire(worker_id)
            if task_id is None:
                return
        else:
            pending = (
                self._pending[worker_id] if self._static else self._pending
            )
            if not pending:
                return
            task_id = pending.popleft()
        self._assigned[worker_id] = (
            task_id, time.monotonic(), time.perf_counter()
        )
        self._queues[worker_id].put((task_id, self._payloads[task_id]))

    def _requeue(self, worker_id: int, retries: dict[int, int], reason: str) -> None:
        """Return a failed worker's in-flight task to the head of its deque."""
        task_id, _, _ = self._assigned.pop(worker_id)
        retries[task_id] = retries.get(task_id, 0) + 1
        if retries[task_id] > self._max_task_retries:
            raise ParallelExecutionError(
                f"task {task_id} failed {retries[task_id]} times "
                f"(last cause: {reason}); giving up"
            )
        if self._obs is not None:
            self._obs.metrics.counter("shared_memory.tasks.retried").inc()
        if self._ws_mode:
            assert self._ws is not None
            self._ws.requeue(worker_id, task_id)
        elif self._static:
            assert self._owners is not None
            self._pending[self._owners[task_id]].appendleft(task_id)
        else:
            self._pending.appendleft(task_id)

    def _note_beat(self, worker_id: int, beat: dict | None) -> None:
        """A worker reported an outcome: refresh its heartbeat clock.

        Progress clears any standing stall flag — the watchdog may flag the
        worker again if it goes quiet later (one traceback dump per stall
        episode, not one per poll).
        """
        self._last_beat[worker_id] = time.monotonic()
        self._stall_flagged.discard(worker_id)
        if self._live is not None:
            self._live.heartbeat(worker_id, beat)

    def _update_live_scheduler(self) -> None:
        """Publish queue depth (and steal stats in worksteal mode)."""
        if self._live is None:
            return
        if self._ws is not None:
            self._live.scheduler_update(
                **self._ws.live_snapshot(len(self._assigned))
            )
        else:
            pending = getattr(self, "_pending", None)
            if pending is None:
                outstanding = len(self._assigned)
            elif self._static:
                outstanding = (
                    sum(len(q) for q in pending) + len(self._assigned)
                )
            else:
                outstanding = len(pending) + len(self._assigned)
            self._live.scheduler_update(outstanding=outstanding)

    def _watch_for_stalls(self, now: float) -> None:
        """Flag in-flight workers whose heartbeat went quiet too long.

        A stall is observability, not recovery: the worker gets a SIGUSR1
        ``faulthandler`` dump request (best-effort, platform-guarded), the
        trace and metrics record a ``stall`` event, and the live status
        file marks the worker — but the kill/retry decision stays with the
        existing ``task_timeout`` fault path.
        """
        if self._live is None or self._live.stall_timeout is None:
            return
        from repro.obs.live import request_stack_dump

        for worker_id, (task_id, since, _) in list(self._assigned.items()):
            if worker_id in self._stall_flagged:
                continue
            # An idle gap before dispatch is not a stall; the clock starts
            # at whichever is later — last heartbeat or task dispatch.
            reference = max(self._last_beat.get(worker_id, since), since)
            if now - reference <= self._live.stall_timeout:
                continue
            self._stall_flagged.add(worker_id)
            process = self._workers[worker_id]
            pid = process.pid if process is not None else None
            dumped = request_stack_dump(pid)
            if self._obs is not None:
                from repro.obs.trace import US_PER_SECOND

                self._obs.metrics.counter("shared_memory.stalls").inc()
                sink = self._obs.sink
                sink.instant(
                    "stall",
                    (time.perf_counter() - sink.epoch) * US_PER_SECOND,
                    cat="fault",
                    args={
                        "worker": worker_id, "task_id": task_id, "pid": pid,
                        "quiet_seconds": now - reference,
                        "traceback_dumped": dumped,
                    },
                )
            self._live.record_stall(worker_id)

    def _police(self, retries: dict[int, int], outputs: list) -> None:
        """Respawn dead workers, kill and retry timed-out tasks, and make
        sure no idle worker starves while its deque has work."""
        now = time.monotonic()
        for worker_id, process in enumerate(self._workers):
            if process is None or process.is_alive():
                continue
            process.join()
            if worker_id in self._assigned:
                self._requeue(
                    worker_id, retries,
                    f"worker {worker_id} died (exitcode {process.exitcode})",
                )
            self._spawn(worker_id, respawn=True)
        self._watch_for_stalls(now)
        if self._task_timeout is not None:
            expired = [
                worker_id
                for worker_id, (task_id, since, _) in self._assigned.items()
                if now - since > self._task_timeout
                and outputs[task_id] is _UNSET
            ]
            for worker_id in expired:
                process = self._workers[worker_id]
                if process is not None and process.is_alive():
                    process.kill()
                    process.join(timeout=_JOIN_SECONDS)
                self._requeue(
                    worker_id, retries,
                    f"task exceeded {self._task_timeout}s timeout on "
                    f"worker {worker_id}",
                )
                self._spawn(worker_id, respawn=True)
        for worker_id in range(self.n_workers):
            self._dispatch(worker_id)
        self._update_live_scheduler()

    def _merge_result(
        self,
        worker_id: int,
        task_id: int,
        snapshot: dict | None,
        dispatched_perf: float | None,
    ) -> None:
        """Fold one task's worker telemetry into the parent context.

        The parent also records its own side of the task — a dispatch→done
        span on the parent lane (pid 0, one tid per worker slot), so the
        merged trace shows dispatch latency and worker compute side by side.
        """
        if self._obs is None:
            return
        from repro.obs.procmerge import merge_snapshot

        metrics = self._obs.metrics
        metrics.counter(f"shared_memory.worker{worker_id}.tasks").inc()
        if dispatched_perf is not None:
            self._obs.sink.wall_event(
                f"task{task_id}", dispatched_perf,
                pid=0, tid=worker_id + 1, cat="dispatch",
                args={"task_id": task_id, "worker": worker_id},
            )
        if snapshot is not None:
            read_bytes_before = metrics.counters().get(
                "mine.intersection_read_bytes", 0.0
            )
            merge_snapshot(
                self._obs, snapshot,
                prefix=f"shared_memory.worker{worker_id}",
                lane_name=f"worker {worker_id} (pid {snapshot.get('pid', '?')})"
                if isinstance(snapshot, dict) else None,
                seen_pids=self._seen_pids,
            )
            read_bytes_after = metrics.counters().get(
                "mine.intersection_read_bytes", 0.0
            )
            metrics.counter(
                f"shared_memory.worker{worker_id}.read_bytes"
            ).inc(read_bytes_after - read_bytes_before)

    def finalize_load_balance(self) -> dict[str, float] | None:
        """The merged-counter analogue of ``openmp.load_balance_summary``.

        Per-worker busy seconds come from the workers' own ``worker.busy_s``
        counters (rebound to ``shared_memory.worker{w}.busy_s`` at merge
        time); the makespan is the parent's accumulated wall time inside
        :meth:`run`.  Sets ``shared_memory.load_balance.*`` gauges and
        returns the summary, or ``None`` without an ObsContext.
        """
        if self._obs is None:
            return None
        counters = self._obs.metrics.counters()
        busy = [
            counters.get(f"shared_memory.worker{w}.busy_s", 0.0)
            for w in range(self.n_workers)
        ]
        makespan = self._run_seconds
        max_busy = max(busy) if busy else 0.0
        mean_busy = sum(busy) / len(busy) if busy else 0.0
        summary = {
            "max_busy": max_busy,
            "min_busy": min(busy) if busy else 0.0,
            "mean_busy": mean_busy,
            "imbalance": (max_busy / mean_busy - 1.0) if mean_busy else 0.0,
            "idle_fraction": (
                1.0 - sum(busy) / (self.n_workers * makespan)
                if makespan > 0 else 0.0
            ),
        }
        if self._ws is not None:
            self._ws.record_counters(self._obs, prefix="shared_memory.worksteal")
            summary["steal_fraction"] = self._ws.stats.steal_fraction()
        for key, value in summary.items():
            self._obs.metrics.gauge(f"shared_memory.load_balance.{key}").set(
                value
            )
        return summary


# --------------------------------------------------------------------------
# Runners
# --------------------------------------------------------------------------


def _default_workers() -> int:
    return max(1, os.cpu_count() or 1)


def _resolve_workers(n_workers: int | None, n_tasks: int) -> int:
    """Validate an explicit worker count and clamp it to available work."""
    if n_workers is None:
        n_workers = _default_workers()
    elif n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    return min(n_workers, max(1, n_tasks))


def run_eclat_shared_memory(
    db: TransactionDatabase,
    min_support: float | int,
    representation: str = "bitvector_numpy",
    *,
    n_workers: int | None = None,
    schedule: "ScheduleSpec | str | None" = None,
    task_timeout: float | None = None,
    item_order: str = "support",
    max_task_retries: int = 2,
    spawn_depth: int | None = None,
    spawn_min_members: int | None = None,
    obs=None,
    live=None,
    _fault: dict | None = None,
) -> MiningResult:
    """Parallel Eclat over a zero-copy shared singleton matrix.

    One task per top-level equivalence class, dispatched under the paper's
    ``schedule(dynamic, 1)`` by default.  ``schedule="worksteal"`` switches
    to the deque scheduler with *nested* task spawning: classes whose
    prefix is at most ``spawn_depth`` long and which keep at least
    ``spawn_min_members`` members become stealable tasks of their own, so
    even a dataset with fewer frequent items than workers saturates the
    pool.  Bit-identical to the serial miners either way.  Prefer
    ``repro.mine(..., backend="shared_memory")``.
    """
    from repro.engine.vectorized import _frequent_singletons

    if item_order not in ("support", "id"):
        raise ConfigurationError(
            f"item_order must be 'support' or 'id', got {item_order!r}"
        )
    spec = parse_schedule(schedule, ECLAT_SCHEDULE)
    worksteal = spec.kind == "worksteal"
    if not worksteal and (spawn_depth is not None or spawn_min_members is not None):
        raise ConfigurationError(
            "spawn_depth/spawn_min_members require schedule='worksteal'"
        )
    policy = resolve_spawn_policy(spawn_depth, spawn_min_members)
    min_sup = resolve_min_support(db, min_support)
    wall_start = time.perf_counter() if obs is not None else 0.0

    result = MiningResult(
        dataset=db.name, algorithm="eclat",
        representation="bitvector_numpy", min_support=min_sup,
        n_transactions=db.n_transactions, backend="shared_memory",
    )
    matrix, supports, items = _frequent_singletons(db, min_sup)
    order = np.arange(len(items))
    if item_order == "support" and len(items):
        order = np.lexsort((np.asarray(items), supports))
    itemsets: list[Itemset] = [(items[int(i)],) for i in order]
    matrix = matrix[order] if matrix.size else matrix
    for itemset, support in zip(itemsets, supports[order]):
        result.add(itemset, int(support))
    if obs is not None:
        obs.metrics.counter("eclat.toplevel.tasks").inc(max(0, len(itemsets) - 1))

    n_classes = len(itemsets) - 1  # the last member has no later siblings
    if worksteal:
        # The whole point is items < workers: never clamp the team to the
        # top-level task count — nested spawns feed the surplus workers.
        workers = _default_workers() if n_workers is None else n_workers
        if workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {workers}")
    else:
        workers = _resolve_workers(n_workers, n_classes)
    try:
        if n_classes >= 1:
            if worksteal:
                n = len(itemsets)
                payloads = [
                    ("eclat_ws", ((), tuple(range(i, n))))
                    for i in range(n_classes)
                ]
            else:
                bounds = chunk_boundaries(n_classes, workers, spec)
                payloads = [
                    ("eclat", list(range(start, end))) for start, end in bounds
                ]
            if live is not None:
                # One unit of progress per top-level task; worksteal spawns
                # grow the total as they are registered.
                live.add_total(len(payloads))
            init = {
                "min_sup": min_sup,
                "itemsets": itemsets,
                "collect_obs": obs is not None,
                "sample_interval": getattr(obs, "sample_interval", None),
                "live": live is not None,
                "fault": _fault,
                "spawn_depth": policy[0],
                "spawn_min_members": policy[1],
                "stall_dump_path": (
                    str(live.stack_dump_path())
                    if live is not None and live.stack_dump_path() is not None
                    else None
                ),
            }
            with SharedMemoryPool(
                matrix, init, workers, spec,
                task_timeout=task_timeout, max_task_retries=max_task_retries,
                obs=obs, live=live,
            ) as pool:
                for out in pool.run(payloads):
                    result.itemsets.update(out)
                pool.finalize_load_balance()
    finally:
        # Emitted on the fault path too: an aborted run's trace must still
        # show the mine span around whatever worker telemetry arrived.
        if obs is not None:
            obs.sink.wall_event(
                "shared_memory.mine", wall_start, cat="mine",
                args={"algorithm": "eclat", "tasks": max(0, n_classes),
                      "schedule": str(spec)},
            )
    return result


def run_apriori_shared_memory(
    db: TransactionDatabase,
    min_support: float | int,
    representation: str = "bitvector_numpy",
    *,
    n_workers: int | None = None,
    schedule: "ScheduleSpec | str | None" = None,
    task_timeout: float | None = None,
    prune: bool = True,
    max_generations: int | None = None,
    max_task_retries: int = 2,
    obs=None,
    live=None,
    _fault: dict | None = None,
) -> MiningResult:
    """Parallel Apriori counting candidate ranges against the shared matrix.

    Each generation's candidates are chunked under ``schedule(static)``
    (per the paper's Section III; pass ``schedule="static,1"`` for the
    literal clause) and workers support-count their ranges by k-way AND
    over the zero-copy singleton rows — no generation-(k-1) verticals ever
    leave the parent.  ``schedule="worksteal"`` carves each generation
    into finer stealable range chunks (~8 per worker) balanced by the
    deque scheduler — useful when candidate costs are skewed.  Prefer
    ``repro.mine(..., backend="shared_memory")``.
    """
    spec = parse_schedule(schedule, ScheduleSpec(APRIORI_SCHEDULE.kind, None))
    min_sup = resolve_min_support(db, min_support)
    wall_start = time.perf_counter() if obs is not None else 0.0

    result = MiningResult(
        dataset=db.name, algorithm="apriori",
        representation="bitvector_numpy", min_support=min_sup,
        n_transactions=db.n_transactions, backend="shared_memory",
    )
    matrix = pack_database(db)
    supports = popcount_rows(matrix)
    frequent: list[Itemset] = [
        (int(item),) for item in np.nonzero(supports >= min_sup)[0]
    ]
    for itemset in frequent:
        result.add(itemset, int(supports[itemset[0]]))

    pool: SharedMemoryPool | None = None
    generation = 1
    try:
        while frequent:
            if max_generations is not None and generation >= max_generations:
                break
            generation += 1
            candidates = generate_candidates(frequent, prune=prune)
            if not candidates:
                break
            cand_items = [c.items for c in candidates]
            if pool is None:
                if spec.kind == "worksteal":
                    workers = (
                        _default_workers() if n_workers is None else n_workers
                    )
                    if workers < 1:
                        raise ConfigurationError(
                            f"n_workers must be >= 1, got {workers}"
                        )
                else:
                    workers = _resolve_workers(n_workers, len(cand_items))
                init = {
                    "min_sup": min_sup,
                    "collect_obs": obs is not None,
                    "sample_interval": getattr(obs, "sample_interval", None),
                    "live": live is not None,
                    "fault": _fault,
                    "stall_dump_path": (
                        str(live.stack_dump_path())
                        if live is not None
                        and live.stack_dump_path() is not None
                        else None
                    ),
                }
                pool = SharedMemoryPool(
                    matrix, init, workers, spec,
                    task_timeout=task_timeout,
                    max_task_retries=max_task_retries, obs=obs, live=live,
                )
            bounds = chunk_boundaries(len(cand_items), pool.n_workers, spec)
            payloads = [
                ("apriori", cand_items[start:end]) for start, end in bounds
            ]
            if live is not None:
                # Candidate generations appear one at a time; each extends
                # the total by its range count as it becomes known.
                live.add_total(len(payloads))
            outputs = pool.run(payloads)
            counted = [s for chunk in outputs for s in chunk]
            next_frequent: list[Itemset] = []
            for itemset, support in zip(cand_items, counted):
                if support >= min_sup:
                    result.add(itemset, int(support))
                    next_frequent.append(itemset)
            frequent = next_frequent
    finally:
        if pool is not None:
            pool.finalize_load_balance()
            pool.shutdown()
        # Emitted on the fault path too: an aborted run's trace must still
        # show the mine span around whatever worker telemetry arrived.
        if obs is not None:
            obs.sink.wall_event(
                "shared_memory.mine", wall_start, cat="mine",
                args={"algorithm": "apriori", "generations": generation,
                      "schedule": str(spec)},
            )
    return result
