"""Simulated parallel Eclat (Section IV / Algorithm 2) on the machine model.

Two task decompositions are supported:

* ``task_mode="toplevel"`` (default, the paper's implementation): one
  OpenMP ``schedule(dynamic, 1)`` region over the frequent 1-item
  prefixes; each task owns its entire recursive subtree.  All data a task
  derives is private to its thread — only the depth-1 combines read the
  shared singleton verticals — which is why Eclat's communication is tiny
  and it stays scalable where Apriori stalls.  The flip side, which the
  paper states explicitly ("poses a limit on the possible number of
  threads"), is that parallelism is bounded by the number of frequent
  items and by the largest subtree.

* ``task_mode="level"`` (ablation): the literal reading of Algorithm 2,
  where the recursive call sits outside the pair loops and each depth is
  one region over all frequent d-itemsets.  More parallel slots, but the
  inter-level data becomes shared, Apriori-style — the E8 ablation bench
  uses this to show the communication trade-off.

Costs are priced exactly as in the Apriori replay: cache-aware charging,
per-thread remote streaming, per-blade link serialization, and the global
bisection cap.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.machine.blacklight import BLACKLIGHT, MachineSpec
from repro.machine.cache_model import charge_left_reads, charge_right_reads
from repro.machine.cost_model import record_region_attribution
from repro.machine.memory_model import (
    per_blade_link_traffic,
    remote_read_bytes,
)
from repro.openmp.schedule import ECLAT_SCHEDULE, ScheduleSpec
from repro.openmp.team import ThreadTeam
from repro.parallel.apriori_parallel import BasePlacement, _obs_target
from repro.errors import SimulationError
from repro.parallel.tasks import EclatTaskTrace, toplevel_view
from repro.parallel.timing import RegionBreakdown, SimulatedTime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import ObsContext


def simulate_eclat(
    trace: EclatTaskTrace,
    n_threads: int,
    machine: MachineSpec = BLACKLIGHT,
    schedule: ScheduleSpec = ECLAT_SCHEDULE,
    base_placement: BasePlacement = "master",
    task_mode: str = "toplevel",
    obs: "ObsContext | None" = None,
) -> SimulatedTime:
    """Simulated wall time of the traced Eclat run at ``n_threads``.

    With an ``obs`` context, every region's chunk trace is forwarded to the
    sink (pid = thread count, tid = simulated thread) and link-bytes /
    makespan-vs-link-bound attribution lands in the registry.
    """
    if task_mode == "toplevel":
        return _simulate_toplevel(
            trace, n_threads, machine, schedule, base_placement, obs
        )
    if task_mode != "level":
        raise SimulationError(
            f"task_mode must be 'toplevel' or 'level', got {task_mode!r}"
        )
    team = ThreadTeam(n_threads, machine)
    cost = team.cost_model
    topo = team.topology
    sink = obs.sink if obs is not None else None
    if sink is not None and sink.enabled:
        sink.set_process_name(n_threads, f"eclat/level @ {n_threads} threads")

    # Serial load, reported but not timed (the paper times the mining loop).
    load_seconds = cost.serial_time(trace.build_ops)
    result = SimulatedTime(
        algorithm="eclat",
        representation="",
        n_threads=n_threads,
        total_seconds=0.0,
        load_seconds=load_seconds,
    )

    member_homes: np.ndarray | None = None  # homes of this level's members
    for level in trace.levels:
        if member_homes is None:
            # Depth-1 data comes from the serial loader.
            if base_placement == "master":
                member_homes = np.zeros(level.n_members, dtype=np.int64)
            else:
                member_homes = (
                    np.arange(level.n_members, dtype=np.int64) % topo.n_blades
                )
        if level.n_combines == 0:
            break

        n_tasks = level.n_members
        left_bytes = level.member_payload_bytes[level.combine_left]
        right_bytes = level.member_payload_bytes[level.combine_right]
        cpu_per_task = np.bincount(
            level.combine_left, weights=level.combine_cpu, minlength=n_tasks
        ) + machine.iteration_overhead_ops * np.bincount(
            level.combine_left, minlength=n_tasks
        )
        written_per_task = np.bincount(
            level.combine_left, weights=level.combine_written, minlength=n_tasks
        )

        # Pass 1: provisional (all-local) durations fix the dynamic
        # assignment; remote penalties are then charged against it.
        read_per_task_local = np.bincount(
            level.combine_left, weights=left_bytes + right_bytes, minlength=n_tasks
        )
        provisional = cost.task_time(
            cpu_per_task, read_per_task_local + written_per_task, np.zeros(n_tasks)
        )
        assignment = team.run_region(provisional, schedule).outcome.iteration_thread

        combine_assignment = assignment[level.combine_left]
        charged_left = charge_left_reads(
            combine_assignment, level.combine_left, left_bytes,
            level.n_members, machine.cache_per_thread,
        )
        charged_right = charge_right_reads(
            combine_assignment, level.combine_right, right_bytes,
            level.n_members, n_threads, machine.cache_per_thread,
        )
        reader_blades = team.reader_blades(combine_assignment)
        left_homes = member_homes[level.combine_left]
        right_homes = member_homes[level.combine_right]
        local_l, remote_l = remote_read_bytes(reader_blades, left_homes, charged_left)
        local_r, remote_r = remote_read_bytes(
            reader_blades, right_homes, charged_right
        )

        local_per_task = written_per_task + np.bincount(
            level.combine_left, weights=local_l + local_r, minlength=n_tasks
        )
        remote_per_task = np.bincount(
            level.combine_left, weights=remote_l + remote_r, minlength=n_tasks
        )
        durations = cost.task_time(cpu_per_task, local_per_task, remote_per_task)

        link_traffic = per_blade_link_traffic(
            reader_blades, left_homes, charged_left, topo.n_blades
        ) + per_blade_link_traffic(
            reader_blades, right_homes, charged_right, topo.n_blades
        )
        label = f"depth{level.depth}"
        total_remote = float(remote_l.sum() + remote_r.sum())
        region = team.run_region(
            durations,
            schedule,
            link_traffic,
            total_remote_bytes=total_remote,
            sink=sink,
            region=label,
            ts_offset=result.total_seconds,
        )
        record_region_attribution(
            obs,
            label,
            makespan=region.makespan,
            link_bound=region.link_bound,
            fork_join=region.fork_join,
            per_blade_link_bytes=link_traffic,
            remote_bytes=total_remote,
            thread_busy=region.outcome.thread_busy,
        )
        result.regions.append(
            RegionBreakdown(
                label=label,
                time=region.time,
                makespan=region.makespan,
                link_bound=region.link_bound,
                fork_join=region.fork_join,
            )
        )
        result.total_seconds += region.time

        # Children are first-touched by the task (thread) that created them.
        frequent = level.child_index >= 0
        n_children = int(frequent.sum())
        homes_next = np.zeros(n_children, dtype=np.int64)
        creator_threads = assignment[level.combine_left[frequent]]
        homes_next[level.child_index[frequent]] = np.asarray(
            topo.blade_of_thread(creator_threads), np.int64
        )
        member_homes = homes_next

    return result


def _simulate_toplevel(
    trace: EclatTaskTrace,
    n_threads: int,
    machine: MachineSpec,
    schedule: ScheduleSpec,
    base_placement: BasePlacement,
    obs: "ObsContext | None" = None,
) -> SimulatedTime:
    """Depth-first tasks: one per frequent 1-item prefix (paper default)."""
    view = toplevel_view(trace)
    team = ThreadTeam(n_threads, machine)
    cost = team.cost_model
    n_blades = team.topology.n_blades
    sink = obs.sink if obs is not None else None
    if sink is not None and sink.enabled:
        sink.set_process_name(n_threads, f"eclat @ {n_threads} threads")

    load_seconds = cost.serial_time(view.build_ops)
    result = SimulatedTime(
        algorithm="eclat",
        representation="",
        n_threads=n_threads,
        total_seconds=0.0,
        load_seconds=load_seconds,
    )
    if view.n_tasks == 0:
        return result

    # Cache-aware shared traffic: a task whose distinct singleton working
    # set stays resident fetches each shared payload once; otherwise every
    # depth-1 combine re-streams its operands.
    fits = view.shared_distinct_bytes <= machine.cache_per_thread
    effective_shared = np.where(
        fits, view.shared_distinct_bytes, view.shared_read_bytes
    ).astype(np.float64)

    # Remote fraction of the shared reads.  Under `master` placement every
    # reader off blade 0 pays remote for all of them (charging the 1/B of
    # readers on blade 0 too is an accepted < 1/B overestimate); under
    # `interleaved`, (B-1)/B of the pages are remote for everyone.
    if n_blades == 1:
        shared_remote = np.zeros(view.n_tasks)
    elif base_placement == "master":
        shared_remote = effective_shared.copy()
    else:
        shared_remote = effective_shared * (n_blades - 1) / n_blades

    local_bytes = (
        view.private_read_bytes
        + view.bytes_written
        + (effective_shared - shared_remote)
    )
    cpu_ops = view.cpu_ops + machine.iteration_overhead_ops * view.n_combines
    durations = cost.task_time(cpu_ops, local_bytes, shared_remote)

    region = team.run_region(durations, schedule, sink=sink, region="toplevel")
    assignment = region.outcome.iteration_thread
    reader_blades = team.reader_blades(assignment)
    if base_placement == "master":
        homes = np.zeros(view.n_tasks, dtype=np.int64)
    else:
        homes = np.arange(view.n_tasks, dtype=np.int64) % n_blades
    link_traffic = per_blade_link_traffic(
        reader_blades, homes, effective_shared.astype(np.int64), n_blades
    )
    link_bound = max(
        cost.link_serialization_time(link_traffic),
        cost.bisection_time(float(shared_remote.sum())),
    )

    region_time = max(region.makespan, link_bound) + region.fork_join
    record_region_attribution(
        obs,
        "toplevel",
        makespan=region.makespan,
        link_bound=link_bound,
        fork_join=region.fork_join,
        per_blade_link_bytes=link_traffic,
        remote_bytes=float(shared_remote.sum()),
        thread_busy=region.outcome.thread_busy,
    )
    result.total_seconds = region_time
    result.regions.append(
        RegionBreakdown(
            label="toplevel",
            time=region_time,
            makespan=region.makespan,
            link_bound=link_bound,
            fork_join=region.fork_join,
        )
    )
    return result


def eclat_time_curve(
    trace: EclatTaskTrace,
    thread_counts: list[int],
    machine: MachineSpec = BLACKLIGHT,
    schedule: ScheduleSpec = ECLAT_SCHEDULE,
    base_placement: BasePlacement = "master",
    task_mode: str = "toplevel",
    obs: "ObsContext | None" = None,
    obs_threads: int | None = None,
) -> dict[int, SimulatedTime]:
    """Simulated times across a thread-count sweep.

    ``obs`` instruments one point of the sweep (``obs_threads``, default
    the largest count) — see :func:`apriori_time_curve`.
    """
    target = _obs_target(obs, obs_threads, thread_counts)
    return {
        t: simulate_eclat(
            trace, t, machine, schedule, base_placement, task_mode,
            obs=obs if t == target else None,
        )
        for t in thread_counts
    }
