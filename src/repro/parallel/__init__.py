"""Instrumented parallel FIM: trace collection + NUMA-machine replay."""

from repro.parallel.tasks import (
    AprioriGenerationTrace,
    AprioriSingletonTrace,
    AprioriTrace,
    EclatLevelTrace,
    EclatTaskTrace,
    EclatToplevelView,
    EclatTrace,
    toplevel_view,
)
from repro.parallel.persistence import (
    load_apriori_trace,
    load_eclat_trace,
    save_apriori_trace,
    save_eclat_trace,
)
from repro.parallel.timing import RegionBreakdown, SimulatedTime
from repro.parallel.validation import validate_apriori_trace, validate_eclat_trace
from repro.parallel.apriori_parallel import apriori_time_curve, simulate_apriori
from repro.parallel.eclat_parallel import eclat_time_curve, simulate_eclat
from repro.parallel.runner import ScalabilityStudy, run_scalability_study
from repro.parallel.speedup import (
    RuntimeTable,
    SpeedupSeries,
    runtime_table,
    scaling_verdict,
    speedup_series,
)
from repro.parallel.worksteal import (
    DEFAULT_SPAWN_DEPTH,
    DEFAULT_SPAWN_MIN_MEMBERS,
    WorkStealScheduler,
    WorkStealStats,
    resolve_spawn_policy,
)
from repro.parallel.worksteal_sim import (
    SimTask,
    TreeScheduleOutcome,
    eclat_task_tree,
    simulate_static_tree,
    simulate_worksteal_tree,
    worksteal_advantage,
)

__all__ = [
    "AprioriTrace",
    "AprioriGenerationTrace",
    "AprioriSingletonTrace",
    "EclatTrace",
    "EclatTaskTrace",
    "EclatLevelTrace",
    "EclatToplevelView",
    "toplevel_view",
    "save_apriori_trace",
    "load_apriori_trace",
    "save_eclat_trace",
    "load_eclat_trace",
    "validate_apriori_trace",
    "validate_eclat_trace",
    "SimulatedTime",
    "RegionBreakdown",
    "simulate_apriori",
    "apriori_time_curve",
    "simulate_eclat",
    "eclat_time_curve",
    "ScalabilityStudy",
    "run_scalability_study",
    "RuntimeTable",
    "SpeedupSeries",
    "runtime_table",
    "speedup_series",
    "scaling_verdict",
    "WorkStealScheduler",
    "WorkStealStats",
    "resolve_spawn_policy",
    "DEFAULT_SPAWN_DEPTH",
    "DEFAULT_SPAWN_MIN_MEMBERS",
    "SimTask",
    "TreeScheduleOutcome",
    "simulate_static_tree",
    "simulate_worksteal_tree",
    "eclat_task_tree",
    "worksteal_advantage",
]
