"""Simulated parallel Apriori (Section III) on the NUMA machine model.

The real algorithm runs once under :class:`AprioriTrace`; this module then
replays the trace at any thread count:

* the database load and vertical build are serial (the master thread reads
  the file), so the generation-1 verticals are first-touched on **blade 0**
  under the default ``master`` placement — the classic NUMA pitfall the
  paper's memory-exchange explanation describes;
* each later generation is one ``schedule(static)`` parallel region over
  its candidates; a task's duration combines measured element ops, local
  traffic, and remote traffic for whichever parent payloads live on another
  blade;
* candidate generation + pruning between regions is serial (Amdahl term);
* each region is also bounded below by its busiest blade link — with all
  generation-1 payloads homed on blade 0, generation 2's reads serialize on
  blade 0's link, which is what pins tidset/bitvector Apriori near one
  blade of useful parallelism while diffset's small payloads squeeze
  through.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Literal

import numpy as np

from repro.errors import SimulationError
from repro.machine.blacklight import BLACKLIGHT, MachineSpec
from repro.machine.cache_model import charge_left_reads, charge_right_reads
from repro.machine.cost_model import record_region_attribution
from repro.machine.memory_model import (
    PlacementMap,
    first_touch_placement,
    interleaved_placement,
    per_blade_link_traffic,
    remote_read_bytes,
)
from repro.openmp.schedule import APRIORI_SCHEDULE, ScheduleSpec, static_assignment
from repro.openmp.team import ThreadTeam
from repro.parallel.tasks import AprioriTrace
from repro.parallel.timing import RegionBreakdown, SimulatedTime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import ObsContext

BasePlacement = Literal["master", "interleaved"]


def _singleton_placement(
    n_items: int, policy: BasePlacement, team: ThreadTeam
) -> PlacementMap:
    if policy == "master":
        return PlacementMap(np.zeros(n_items, dtype=np.int64))
    if policy == "interleaved":
        return interleaved_placement(n_items, team.topology)
    raise SimulationError(f"unknown base placement {policy!r}")


def _dynamic_assignment(
    team: ThreadTeam,
    schedule: ScheduleSpec,
    provisional_durations: np.ndarray,
) -> np.ndarray:
    """Assignment for non-static schedules, from a provisional simulation.

    Dynamic dispatch order depends on durations, which depend on remote
    penalties, which depend on the assignment; one provisional round with
    local-only durations breaks the cycle (documented approximation — the
    paper's Apriori is static, so this path only serves the scheduling
    ablation).
    """
    outcome = team.run_region(provisional_durations, schedule).outcome
    return outcome.iteration_thread


def simulate_apriori(
    trace: AprioriTrace,
    n_threads: int,
    machine: MachineSpec = BLACKLIGHT,
    schedule: ScheduleSpec = APRIORI_SCHEDULE,
    base_placement: BasePlacement = "master",
    obs: "ObsContext | None" = None,
) -> SimulatedTime:
    """Simulated wall time of the traced Apriori run at ``n_threads``.

    With an ``obs`` context, each generation's chunk trace is forwarded to
    the sink (pid = thread count, tid = simulated thread) and the region's
    link-bytes / makespan-vs-link-bound attribution lands in the registry.
    """
    if trace.singletons is None:
        raise SimulationError("trace has no generation-1 record; run the miner first")

    team = ThreadTeam(n_threads, machine)
    cost = team.cost_model
    topo = team.topology

    # Serial load: read the database, build + count the singleton verticals.
    # Reported but NOT counted in total_seconds — the paper times the mining
    # loop, not I/O.
    load_seconds = cost.serial_time(trace.singletons.build_ops)

    result = SimulatedTime(
        algorithm="apriori",
        representation="",
        n_threads=n_threads,
        total_seconds=0.0,
        load_seconds=load_seconds,
    )

    sink = obs.sink if obs is not None else None
    if sink is not None and sink.enabled:
        sink.set_process_name(n_threads, f"apriori @ {n_threads} threads")

    gen1_homes = _singleton_placement(
        trace.singletons.payload_bytes.size, base_placement, team
    )
    prev_homes = gen1_homes.select(trace.singletons.kept_mask)

    for gen in trace.generations:
        n = gen.n_candidates
        if schedule.kind == "static":
            assignment = static_assignment(n, n_threads, schedule.chunk_size)
        else:
            provisional = cost.task_time(
                gen.cpu_ops,
                gen.left_bytes + gen.right_bytes + gen.bytes_written,
                np.zeros(n),
            )
            assignment = _dynamic_assignment(team, schedule, provisional)
        reader_blades = team.reader_blades(assignment)
        n_parents = int(len(prev_homes))

        # Cache-aware charging: only bytes that miss both the per-thread
        # cache and the blade's shared L3 move through memory or the
        # interconnect (a hit in either level spares the traffic).
        charged_left = np.minimum(
            charge_left_reads(
                assignment, gen.left_parent, gen.left_bytes, n_parents,
                machine.cache_per_thread,
            ),
            charge_left_reads(
                reader_blades, gen.left_parent, gen.left_bytes, n_parents,
                machine.cache_per_blade,
            ),
        )
        charged_right = np.minimum(
            charge_right_reads(
                assignment, gen.right_parent, gen.right_bytes, n_parents,
                n_threads, machine.cache_per_thread,
                written_bytes=gen.bytes_written,
            ),
            charge_right_reads(
                reader_blades, gen.right_parent, gen.right_bytes, n_parents,
                topo.n_blades, machine.cache_per_blade,
                written_bytes=gen.bytes_written,
            ),
        )

        left_homes = prev_homes.homes_of(gen.left_parent)
        right_homes = prev_homes.homes_of(gen.right_parent)
        local_l, remote_l = remote_read_bytes(reader_blades, left_homes, charged_left)
        local_r, remote_r = remote_read_bytes(
            reader_blades, right_homes, charged_right
        )
        local_bytes = local_l + local_r + gen.bytes_written
        remote_bytes = remote_l + remote_r

        durations = cost.task_time(
            gen.cpu_ops + machine.iteration_overhead_ops, local_bytes, remote_bytes
        )
        link_traffic = per_blade_link_traffic(
            reader_blades, left_homes, charged_left, topo.n_blades
        ) + per_blade_link_traffic(
            reader_blades, right_homes, charged_right, topo.n_blades
        )

        label = f"gen{gen.generation}"
        region = team.run_region(
            durations,
            schedule,
            link_traffic,
            total_remote_bytes=float(remote_bytes.sum()),
            sink=sink,
            region=label,
            ts_offset=result.total_seconds,
        )
        serial = cost.serial_time(gen.candidate_gen_ops)
        record_region_attribution(
            obs,
            label,
            makespan=region.makespan,
            link_bound=region.link_bound,
            fork_join=region.fork_join,
            serial=serial,
            per_blade_link_bytes=link_traffic,
            remote_bytes=float(remote_bytes.sum()),
            thread_busy=region.outcome.thread_busy,
        )
        result.regions.append(
            RegionBreakdown(
                label=label,
                time=region.time,
                makespan=region.makespan,
                link_bound=region.link_bound,
                fork_join=region.fork_join,
                serial=serial,
            )
        )
        result.total_seconds += region.time + serial

        prev_homes = first_touch_placement(assignment, topo).select(gen.kept_mask)

    return result


def apriori_time_curve(
    trace: AprioriTrace,
    thread_counts: list[int],
    machine: MachineSpec = BLACKLIGHT,
    schedule: ScheduleSpec = APRIORI_SCHEDULE,
    base_placement: BasePlacement = "master",
    obs: "ObsContext | None" = None,
    obs_threads: int | None = None,
) -> dict[int, SimulatedTime]:
    """Simulated times across a thread-count sweep.

    ``obs`` instruments exactly one point of the sweep — ``obs_threads``
    when given, else the largest count — so region metrics describe a
    single thread count instead of averaging the whole curve.
    """
    target = _obs_target(obs, obs_threads, thread_counts)
    return {
        t: simulate_apriori(
            trace, t, machine, schedule, base_placement,
            obs=obs if t == target else None,
        )
        for t in thread_counts
    }


def _obs_target(
    obs: "ObsContext | None", obs_threads: int | None, thread_counts: list[int]
) -> int | None:
    """Which sweep point to instrument (None when obs is off)."""
    if obs is None or not thread_counts:
        return None
    if obs_threads is not None:
        if obs_threads not in thread_counts:
            raise SimulationError(
                f"obs_threads={obs_threads} is not in the sweep {thread_counts}"
            )
        return obs_threads
    return max(thread_counts)
