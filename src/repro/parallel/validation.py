"""Structural validation of collected cost traces.

A trace drives every scalability number, so a malformed one (index out of
range, lost work, negative cost) would corrupt results silently.  These
checkers raise :class:`SimulationError` on the first inconsistency; the
test suite runs them over every miner/dataset combination, and callers
that load persisted traces from disk can re-validate before replaying.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.parallel.tasks import AprioriTrace, EclatTaskTrace, toplevel_view


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SimulationError(f"trace validation failed: {message}")


def validate_apriori_trace(trace: AprioriTrace) -> None:
    """Check an Apriori trace's internal consistency.

    Invariants: per-generation arrays are parallel; parent indices address
    the previous generation's survivors; parent byte columns agree with the
    recorded payload sizes; costs are non-negative.
    """
    _require(trace.singletons is not None, "missing singleton record")
    assert trace.singletons is not None
    _require(
        trace.singletons.kept_mask.size == trace.singletons.payload_bytes.size,
        "singleton kept mask and payload arrays differ in length",
    )
    _require(trace.singletons.build_ops >= 0, "negative build cost")

    prev_kept_bytes = trace.singletons.payload_bytes[trace.singletons.kept_mask]
    expected_generation = 2
    for gen in trace.generations:
        n = gen.n_candidates
        _require(
            gen.generation == expected_generation,
            f"generation {gen.generation} out of order",
        )
        for name in (
            "cpu_ops", "left_parent", "right_parent", "left_bytes",
            "right_bytes", "bytes_written", "payload_bytes", "kept_mask",
        ):
            _require(
                getattr(gen, name).shape == (n,),
                f"gen{gen.generation}.{name} is not parallel to candidates",
            )
        _require(int(gen.cpu_ops.min(initial=0)) >= 0, "negative cpu_ops")
        n_parents = prev_kept_bytes.size
        if n:
            _require(
                0 <= gen.left_parent.min() and gen.left_parent.max() < n_parents,
                f"gen{gen.generation} left parents outside [0, {n_parents})",
            )
            _require(
                0 <= gen.right_parent.min() and gen.right_parent.max() < n_parents,
                f"gen{gen.generation} right parents outside [0, {n_parents})",
            )
            _require(
                (gen.left_bytes == prev_kept_bytes[gen.left_parent]).all(),
                f"gen{gen.generation} left bytes disagree with parent payloads",
            )
            _require(
                (gen.right_bytes == prev_kept_bytes[gen.right_parent]).all(),
                f"gen{gen.generation} right bytes disagree with parent payloads",
            )
        prev_kept_bytes = gen.payload_bytes[gen.kept_mask]
        expected_generation += 1


def validate_eclat_trace(trace: EclatTaskTrace) -> None:
    """Check an Eclat level trace's internal consistency.

    Invariants: member/creator/child indexing is dense and in range across
    consecutive levels; the top-level aggregation conserves the combine
    counts and cpu work.
    """
    _require(trace.build_ops >= 0, "negative build cost")
    prev_members: int | None = None
    for level in trace.levels:
        n = level.n_combines
        for name in (
            "combine_left", "combine_right", "combine_cpu",
            "combine_written", "child_index", "child_payload",
        ):
            _require(
                getattr(level, name).shape == (n,),
                f"depth{level.depth}.{name} is not parallel to combines",
            )
        _require(
            level.member_payload_bytes.size == level.n_members,
            f"depth{level.depth} member payload length mismatch",
        )
        if n:
            _require(
                level.combine_left.max() < level.n_members
                and level.combine_right.max() < level.n_members,
                f"depth{level.depth} combine parents out of range",
            )
            _require(
                (level.combine_left != level.combine_right).all(),
                f"depth{level.depth} self-combine",
            )
        frequent = level.child_index >= 0
        if frequent.any():
            children = np.sort(level.child_index[frequent])
            _require(
                (children == np.arange(children.size)).all(),
                f"depth{level.depth} child indices not dense",
            )
        if prev_members is not None:
            _require(
                level.creator_task.size == level.n_members
                and (level.creator_task >= 0).all()
                and (level.creator_task < prev_members).all(),
                f"depth{level.depth} creator tasks out of range",
            )
        prev_members = int(frequent.sum())

    view = toplevel_view(trace)
    _require(
        int(view.n_combines.sum()) == trace.total_combines(),
        "top-level view lost combines",
    )
    total_cpu = sum(int(lv.combine_cpu.sum()) for lv in trace.levels)
    _require(
        int(view.cpu_ops.sum()) == total_cpu,
        "top-level view lost cpu work",
    )
    _require(
        bool((view.shared_distinct_bytes <= view.shared_read_bytes).all()),
        "distinct shared bytes exceed per-read shared bytes",
    )
