"""Save/load cost traces as ``.npz`` archives.

Mining a census-scale surrogate takes tens of seconds in pure Python;
replaying its trace takes milliseconds.  Persisting traces decouples the
two: mine once (CI, a beefy box), then sweep thread counts, machines, and
schedules anywhere.  The format is a flat numpy archive — stable,
inspectable, and diff-friendly via ``np.load``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.parallel.tasks import (
    AprioriGenerationTrace,
    AprioriSingletonTrace,
    AprioriTrace,
    EclatLevelTrace,
    EclatTaskTrace,
)

_APRIORI_MAGIC = "apriori-trace-v1"
_ECLAT_MAGIC = "eclat-trace-v1"


def save_apriori_trace(trace: AprioriTrace, path: str | Path) -> Path:
    """Persist an Apriori trace (singletons + every generation)."""
    if trace.singletons is None:
        raise ConfigurationError("trace has no singleton record")
    arrays: dict[str, np.ndarray] = {
        "magic": np.array(_APRIORI_MAGIC),
        "n_generations": np.array(len(trace.generations)),
        "singleton_payload": trace.singletons.payload_bytes,
        "singleton_kept": trace.singletons.kept_mask,
        "singleton_build_ops": np.array(trace.singletons.build_ops),
    }
    for i, gen in enumerate(trace.generations):
        prefix = f"g{i}_"
        arrays[prefix + "generation"] = np.array(gen.generation)
        arrays[prefix + "cpu_ops"] = gen.cpu_ops
        arrays[prefix + "left_parent"] = gen.left_parent
        arrays[prefix + "right_parent"] = gen.right_parent
        arrays[prefix + "left_bytes"] = gen.left_bytes
        arrays[prefix + "right_bytes"] = gen.right_bytes
        arrays[prefix + "bytes_written"] = gen.bytes_written
        arrays[prefix + "payload_bytes"] = gen.payload_bytes
        arrays[prefix + "kept_mask"] = gen.kept_mask
        arrays[prefix + "candidate_gen_ops"] = np.array(gen.candidate_gen_ops)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_apriori_trace(path: str | Path) -> AprioriTrace:
    """Inverse of :func:`save_apriori_trace`."""
    with np.load(Path(path), allow_pickle=False) as data:
        if str(data["magic"]) != _APRIORI_MAGIC:
            raise ConfigurationError(f"{path} is not an Apriori trace archive")
        trace = AprioriTrace()
        trace.singletons = AprioriSingletonTrace(
            payload_bytes=data["singleton_payload"],
            kept_mask=data["singleton_kept"],
            build_ops=int(data["singleton_build_ops"]),
        )
        for i in range(int(data["n_generations"])):
            prefix = f"g{i}_"
            trace.generations.append(
                AprioriGenerationTrace(
                    generation=int(data[prefix + "generation"]),
                    cpu_ops=data[prefix + "cpu_ops"],
                    left_parent=data[prefix + "left_parent"],
                    right_parent=data[prefix + "right_parent"],
                    left_bytes=data[prefix + "left_bytes"],
                    right_bytes=data[prefix + "right_bytes"],
                    bytes_written=data[prefix + "bytes_written"],
                    payload_bytes=data[prefix + "payload_bytes"],
                    kept_mask=data[prefix + "kept_mask"],
                    candidate_gen_ops=int(data[prefix + "candidate_gen_ops"]),
                )
            )
    return trace


def save_eclat_trace(trace: EclatTaskTrace, path: str | Path) -> Path:
    """Persist a (finalized) Eclat level trace."""
    arrays: dict[str, np.ndarray] = {
        "magic": np.array(_ECLAT_MAGIC),
        "n_levels": np.array(len(trace.levels)),
        "build_ops": np.array(trace.build_ops),
    }
    for i, level in enumerate(trace.levels):
        prefix = f"l{i}_"
        arrays[prefix + "depth"] = np.array(level.depth)
        arrays[prefix + "n_members"] = np.array(level.n_members)
        arrays[prefix + "member_payload"] = level.member_payload_bytes
        arrays[prefix + "creator_task"] = level.creator_task
        arrays[prefix + "combine_left"] = level.combine_left
        arrays[prefix + "combine_right"] = level.combine_right
        arrays[prefix + "combine_cpu"] = level.combine_cpu
        arrays[prefix + "combine_written"] = level.combine_written
        arrays[prefix + "child_index"] = level.child_index
        arrays[prefix + "child_payload"] = level.child_payload
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_eclat_trace(path: str | Path) -> EclatTaskTrace:
    """Inverse of :func:`save_eclat_trace`."""
    with np.load(Path(path), allow_pickle=False) as data:
        if str(data["magic"]) != _ECLAT_MAGIC:
            raise ConfigurationError(f"{path} is not an Eclat trace archive")
        levels = []
        for i in range(int(data["n_levels"])):
            prefix = f"l{i}_"
            levels.append(
                EclatLevelTrace(
                    depth=int(data[prefix + "depth"]),
                    n_members=int(data[prefix + "n_members"]),
                    member_payload_bytes=data[prefix + "member_payload"],
                    creator_task=data[prefix + "creator_task"],
                    combine_left=data[prefix + "combine_left"],
                    combine_right=data[prefix + "combine_right"],
                    combine_cpu=data[prefix + "combine_cpu"],
                    combine_written=data[prefix + "combine_written"],
                    child_index=data[prefix + "child_index"],
                    child_payload=data[prefix + "child_payload"],
                )
            )
        return EclatTaskTrace(levels=levels, build_ops=int(data["build_ops"]))
