"""Paper-style table/series assembly over multiple scalability studies.

Tables II-V pair a runtime table (rows = ``dataset@support``, columns =
thread counts) with a speedup figure (series per dataset).  These helpers
turn a list of :class:`ScalabilityStudy` into exactly those rows/series so
every bench prints the same layout the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.parallel.runner import ScalabilityStudy


@dataclass(frozen=True)
class RuntimeTable:
    """The paper's runtime-table layout (times in seconds)."""

    title: str
    thread_counts: list[int]
    rows: list[tuple[str, list[float]]]

    def row_dict(self) -> dict[str, dict[int, float]]:
        return {
            label: dict(zip(self.thread_counts, values))
            for label, values in self.rows
        }


@dataclass(frozen=True)
class SpeedupSeries:
    """One dataset's speedup-vs-threads curve (the figures' series)."""

    label: str
    thread_counts: list[int]
    speedups: list[float]

    def final(self) -> float:
        return self.speedups[-1]

    def peak(self) -> float:
        return max(self.speedups)


def runtime_table(studies: list[ScalabilityStudy], title: str) -> RuntimeTable:
    """Assemble the Table II-V layout from a set of studies."""
    if not studies:
        raise ConfigurationError("no studies given")
    counts = studies[0].thread_counts
    for s in studies:
        if s.thread_counts != counts:
            raise ConfigurationError(
                "all studies in one table must share a thread sweep"
            )
    rows = [
        (s.label(), [s.runtime(t) for t in counts])
        for s in studies
    ]
    return RuntimeTable(title=title, thread_counts=list(counts), rows=rows)


def speedup_series(
    studies: list[ScalabilityStudy], baseline_threads: int = 1
) -> list[SpeedupSeries]:
    """Assemble the Figure 5-8 speedup series from a set of studies."""
    series = []
    for s in studies:
        ups = s.speedups(baseline_threads)
        counts = [t for t in s.thread_counts if t != baseline_threads]
        series.append(
            SpeedupSeries(
                label=s.label(),
                thread_counts=counts,
                speedups=[ups[t] for t in counts],
            )
        )
    return series


def scaling_verdict(series: SpeedupSeries, knee_threads: int = 16) -> str:
    """Classify a curve the way Section V does.

    "scalable" — speedup keeps growing past one blade; "plateau" — grows to
    the knee then flattens; "degrades" — the best point is at or before the
    knee and later points are worse.
    """
    by_count = dict(zip(series.thread_counts, series.speedups))
    at_knee = max(
        (v for t, v in by_count.items() if t <= knee_threads), default=0.0
    )
    beyond = [v for t, v in by_count.items() if t > knee_threads]
    if not beyond:
        return "scalable"
    best_beyond = max(beyond)
    if best_beyond >= 1.5 * at_knee:
        return "scalable"
    if best_beyond >= 0.9 * at_knee:
        return "plateau"
    return "degrades"
