"""Simulated work stealing on the machine model: when does stealing pay?

The runtime scheduler (:mod:`repro.parallel.worksteal`) moves real tasks;
this module answers the *design* question the paper's finding 4 raises —
given a task tree (top-level equivalence classes with nested subtree
tasks), is work stealing faster than the paper's one-task-per-top-level-
class dispatch on a given machine?

Two simulators over the same :class:`SimTask` tree:

* :func:`simulate_static_tree` — the paper's decomposition: only the root
  tasks are schedulable (greedy ``schedule(dynamic, 1)`` dispatch to the
  earliest-free thread); every subtree runs inline on whichever thread
  owns its root.  Parallelism is capped at ``len(roots)``.
* :func:`simulate_worksteal_tree` — every task is schedulable.  Spawned
  children go on the executing thread's deque (LIFO pop / FIFO steal-half,
  identical policy to the runtime scheduler), and a task that migrates to
  a thread other than its spawner pays the steal tax: the victim-side
  dequeue CAS (``MachineSpec.steal_attempt_cost``, charged once per steal
  event on the thief) plus the task's ``payload_bytes`` priced as remote
  NumaLink reads (:meth:`repro.machine.CostModel.remote_time`) — a stolen
  equivalence class's bit rows live on the spawner's blade and must cross
  the interconnect before the thief can join them.

Both return makespans from the same deterministic event-driven list
scheduler, so the crossover is directly comparable:

* **stealing wins** when top-level classes < threads (static leaves
  ``T - |roots|`` threads idle forever; stealing backfills them), and
* **stealing loses** when the steal payload dominates task compute
  (every migration ships more bytes than the work it buys).

``eclat_task_tree`` builds the canonical low-item-count / deep-subtree
workload shape from the paper's finding-4 datasets for benches and tests.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.machine.blacklight import BLACKLIGHT, MachineSpec
from repro.machine.cost_model import CostModel


@dataclass
class SimTask:
    """One schedulable task: inline compute plus spawnable children.

    ``cpu_seconds`` covers only this task's own work (its top join, in
    Eclat terms); children carry theirs.  ``payload_bytes`` is what a
    thief must pull across the interconnect before it can start — for an
    Eclat class task, the prefix rows plus member rows it re-intersects
    from the shared bit matrix.
    """

    cpu_seconds: float
    payload_bytes: int = 0
    children: "list[SimTask]" = field(default_factory=list)

    def subtree_seconds(self) -> float:
        """Inline (no-steal) runtime of this task and everything below."""
        total = self.cpu_seconds
        stack = list(self.children)
        while stack:
            node = stack.pop()
            total += node.cpu_seconds
            stack.extend(node.children)
        return total

    def subtree_tasks(self) -> int:
        count = 1
        stack = list(self.children)
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count


@dataclass
class TreeScheduleOutcome:
    """Result of replaying one task tree on a simulated thread team."""

    makespan: float
    thread_busy: np.ndarray
    n_tasks: int
    n_steal_events: int = 0
    n_stolen_tasks: int = 0
    stolen_bytes: int = 0
    steal_seconds: float = 0.0

    @property
    def total_busy(self) -> float:
        return float(self.thread_busy.sum())

    @property
    def imbalance(self) -> float:
        mean = self.thread_busy.mean() if self.thread_busy.size else 0.0
        if mean == 0.0:
            return 0.0
        return float(self.thread_busy.max() / mean - 1.0)


def _check(roots: list[SimTask], n_threads: int) -> None:
    if n_threads < 1:
        raise SimulationError("n_threads must be >= 1")
    for root in roots:
        if root.cpu_seconds < 0:
            raise SimulationError("task cpu_seconds must be non-negative")


def simulate_static_tree(
    roots: list[SimTask], n_threads: int
) -> TreeScheduleOutcome:
    """The paper's top-level dispatch: subtrees are unsplittable.

    Root tasks are handed in order to the earliest-available thread (the
    greedy model of ``schedule(dynamic, 1)`` over top-level classes); each
    runs its whole subtree inline.  With fewer roots than threads the
    surplus threads never receive work — the finding-4 ceiling.
    """
    _check(roots, n_threads)
    heap: list[tuple[float, int]] = [(0.0, t) for t in range(n_threads)]
    heapq.heapify(heap)
    thread_busy = np.zeros(n_threads, dtype=np.float64)
    n_tasks = 0
    for root in roots:
        available, thread = heapq.heappop(heap)
        work = root.subtree_seconds()
        n_tasks += root.subtree_tasks()
        thread_busy[thread] += work
        heapq.heappush(heap, (available + work, thread))
    makespan = max(t for t, _ in heap) if roots else 0.0
    return TreeScheduleOutcome(
        makespan=float(makespan),
        thread_busy=thread_busy,
        n_tasks=n_tasks,
    )


def simulate_worksteal_tree(
    roots: list[SimTask],
    n_threads: int,
    machine: MachineSpec = BLACKLIGHT,
) -> TreeScheduleOutcome:
    """Event-driven replay of the work-stealing runtime on the machine model.

    Deterministic discrete-event simulation: per-thread deques (LIFO pop,
    FIFO steal-half), root tasks seeded round-robin, children pushed to
    the executor's deque on completion.  A thread with an empty deque
    steals from the currently longest deque, paying
    ``steal_attempt_cost``; each stolen task additionally pays
    ``CostModel.remote_time(payload_bytes)`` when executed (its class rows
    stream across the NumaLink).  Idle threads wake when the next running
    task completes (spawns may refill the deques); the simulation ends
    when nothing is running and every deque is empty.
    """
    _check(roots, n_threads)
    cost = CostModel(machine)
    # Deques hold (task, spawner_thread); index -1 is the LIFO top.
    deques: list[list[tuple[SimTask, int]]] = [[] for _ in range(n_threads)]
    for position, root in enumerate(roots):
        deques[position % n_threads].append((root, position % n_threads))

    clock = np.zeros(n_threads, dtype=np.float64)
    thread_busy = np.zeros(n_threads, dtype=np.float64)
    #: Threads currently executing, as a heap of (finish_time, thread, task).
    running: list[tuple[float, int, SimTask]] = []
    idle: set[int] = set(range(n_threads))
    n_tasks = n_steal_events = n_stolen = 0
    stolen_bytes = 0
    steal_seconds = 0.0
    makespan = 0.0

    def try_start(thread: int, now: float) -> bool:
        """Give ``thread`` its next task at time ``now``; False if none."""
        nonlocal n_tasks, n_steal_events, n_stolen, stolen_bytes, steal_seconds
        own = deques[thread]
        stolen = False
        if own:
            task, spawner = own.pop()
        else:
            victim = max(
                (t for t in range(n_threads) if t != thread and deques[t]),
                key=lambda t: len(deques[t]),
                default=None,
            )
            if victim is None:
                return False
            pending = deques[victim]
            count = (len(pending) + 1) // 2
            batch = [pending.pop(0) for _ in range(count)]
            task, spawner = batch[0]
            own.extend(reversed(batch[1:]))
            n_steal_events += 1
            n_stolen += count
            stolen = True
        start = max(now, clock[thread])
        duration = task.cpu_seconds
        if stolen or spawner != thread:
            tax = float(cost.steal_time(task.payload_bytes))
            duration += tax
            steal_seconds += tax
            stolen_bytes += task.payload_bytes
        finish = start + duration
        clock[thread] = finish
        thread_busy[thread] += duration
        heapq.heappush(running, (finish, thread, task))
        idle.discard(thread)
        n_tasks += 1
        return True

    now = 0.0
    for thread in range(n_threads):
        try_start(thread, now)
    while running:
        now, thread, task = heapq.heappop(running)
        makespan = max(makespan, now)
        # Children enter the completing thread's deque top (LIFO).
        deques[thread].extend((child, thread) for child in task.children)
        if not try_start(thread, now):
            idle.add(thread)
        if task.children:
            # New work appeared: wake every idle thread at this instant.
            for waiting in sorted(idle):
                try_start(waiting, now)
    return TreeScheduleOutcome(
        makespan=makespan,
        thread_busy=thread_busy,
        n_tasks=n_tasks,
        n_steal_events=n_steal_events,
        n_stolen_tasks=n_stolen,
        stolen_bytes=stolen_bytes,
        steal_seconds=steal_seconds,
    )


def eclat_task_tree(
    n_classes: int,
    depth: int,
    branching: int,
    task_seconds: float,
    payload_bytes: int = 0,
) -> list[SimTask]:
    """A uniform low-item-count / deep-subtree workload (finding-4 shape).

    ``n_classes`` top-level equivalence classes, each a ``branching``-ary
    tree ``depth`` levels deep of equal-cost tasks — the regime where the
    item count caps static parallelism but the subtrees hold plenty of
    stealable work.  ``payload_bytes`` is charged per stolen task.
    """
    if n_classes < 0 or depth < 0 or branching < 1:
        raise SimulationError(
            "need n_classes >= 0, depth >= 0, branching >= 1"
        )

    def build(level: int) -> SimTask:
        children = (
            [build(level + 1) for _ in range(branching)] if level < depth
            else []
        )
        return SimTask(
            cpu_seconds=task_seconds,
            payload_bytes=payload_bytes,
            children=children,
        )

    return [build(0) for _ in range(n_classes)]


def worksteal_advantage(
    roots: list[SimTask],
    n_threads: int,
    machine: MachineSpec = BLACKLIGHT,
) -> dict[str, float]:
    """Both makespans plus their ratio — the bench/record-friendly view.

    ``speedup > 1`` means stealing wins on this machine for this tree.
    """
    static = simulate_static_tree(roots, n_threads)
    stealing = simulate_worksteal_tree(roots, n_threads, machine)
    return {
        "static_seconds": static.makespan,
        "worksteal_seconds": stealing.makespan,
        "speedup": (
            static.makespan / stealing.makespan
            if stealing.makespan > 0 else float("inf")
        ),
        "steal_events": float(stealing.n_steal_events),
        "stolen_tasks": float(stealing.n_stolen_tasks),
        "stolen_bytes": float(stealing.stolen_bytes),
        "steal_seconds": stealing.steal_seconds,
    }
