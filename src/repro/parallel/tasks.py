"""Cost-trace collectors for the instrumented miners.

The miners in :mod:`repro.core` emit per-task events through their sink
protocols; these classes accumulate the events into dense numpy arrays that
the simulators consume.  A trace is collected **once** per (dataset,
algorithm, representation, support) combination and then replayed for every
thread count — the measured work is identical across the sweep, exactly as
it is on the real machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.level_table import Level
from repro.representations.base import OpCost


# ---------------------------------------------------------------------------
# Apriori
# ---------------------------------------------------------------------------


@dataclass
class AprioriGenerationTrace:
    """Measured per-candidate costs of one Apriori generation (k >= 2)."""

    generation: int
    cpu_ops: np.ndarray
    left_parent: np.ndarray
    right_parent: np.ndarray
    left_bytes: np.ndarray
    right_bytes: np.ndarray
    bytes_written: np.ndarray
    payload_bytes: np.ndarray
    kept_mask: np.ndarray
    candidate_gen_ops: int

    @property
    def n_candidates(self) -> int:
        return int(self.cpu_ops.size)

    @property
    def total_read_bytes(self) -> int:
        return int(self.left_bytes.sum() + self.right_bytes.sum())


@dataclass
class AprioriSingletonTrace:
    """Generation 1: built during the (serial) database load."""

    payload_bytes: np.ndarray
    kept_mask: np.ndarray
    build_ops: int


class AprioriTrace:
    """An :class:`repro.core.apriori.AprioriSink` that records everything."""

    def __init__(self) -> None:
        self.singletons: AprioriSingletonTrace | None = None
        self.generations: list[AprioriGenerationTrace] = []
        self._pending: dict[str, list] | None = None
        self._pending_generation = 0
        self._prev_kept_bytes: np.ndarray | None = None

    # -- sink protocol -------------------------------------------------------

    def on_singletons(self, level: Level, build_cost: OpCost) -> None:
        assert level.verticals is not None
        payload = np.asarray(
            [v.payload.nbytes for v in level.verticals], dtype=np.int64
        )
        self.singletons = AprioriSingletonTrace(
            payload_bytes=payload,
            kept_mask=np.zeros(payload.size, dtype=bool),  # filled at gen end
            build_ops=build_cost.cpu_ops,
        )

    def on_count_task(
        self,
        generation: int,
        candidate_index: int,
        left_parent: int,
        right_parent: int,
        cost: OpCost,
        payload_bytes: int,
    ) -> None:
        if self._pending is None or self._pending_generation != generation:
            self._pending = {
                "cpu_ops": [],
                "left_parent": [],
                "right_parent": [],
                "bytes_written": [],
                "payload_bytes": [],
            }
            self._pending_generation = generation
        self._pending["cpu_ops"].append(cost.cpu_ops)
        self._pending["left_parent"].append(left_parent)
        self._pending["right_parent"].append(right_parent)
        self._pending["bytes_written"].append(cost.bytes_written)
        self._pending["payload_bytes"].append(payload_bytes)

    def on_generation_done(self, level: Level, candidate_gen_ops: int) -> None:
        if level.generation == 1:
            assert self.singletons is not None
            self.singletons.kept_mask = level.kept.copy()
            self._prev_kept_bytes = self.singletons.payload_bytes[level.kept]
            return

        assert self._pending is not None and self._prev_kept_bytes is not None
        left_parent = np.asarray(self._pending["left_parent"], np.int64)
        right_parent = np.asarray(self._pending["right_parent"], np.int64)
        payload_bytes = np.asarray(self._pending["payload_bytes"], np.int64)
        trace = AprioriGenerationTrace(
            generation=level.generation,
            cpu_ops=np.asarray(self._pending["cpu_ops"], np.int64),
            left_parent=left_parent,
            right_parent=right_parent,
            left_bytes=self._prev_kept_bytes[left_parent],
            right_bytes=self._prev_kept_bytes[right_parent],
            bytes_written=np.asarray(self._pending["bytes_written"], np.int64),
            payload_bytes=payload_bytes,
            kept_mask=level.kept.copy(),
            candidate_gen_ops=candidate_gen_ops,
        )
        self.generations.append(trace)
        self._prev_kept_bytes = payload_bytes[level.kept]
        self._pending = None

    # -- summary ---------------------------------------------------------------

    def total_candidates(self) -> int:
        return sum(g.n_candidates for g in self.generations)

    def total_payload_bytes(self) -> int:
        total = int(self.singletons.payload_bytes.sum()) if self.singletons else 0
        return total + sum(int(g.payload_bytes.sum()) for g in self.generations)


# ---------------------------------------------------------------------------
# Eclat
# ---------------------------------------------------------------------------


@dataclass
class EclatLevelTrace:
    """Measured costs of one Eclat level (all combines of depth ``depth``).

    The parallel loop at this depth has one task per frequent
    ``depth``-itemset (a *member*); combine ``j`` belongs to task
    ``combine_left[j]``.  ``creator_task[i]`` says which task of the
    *previous* level produced member ``i``'s vertical (first touch); -1 for
    depth 1, whose data comes from the serial loader.
    """

    depth: int
    n_members: int
    member_payload_bytes: np.ndarray
    creator_task: np.ndarray
    combine_left: np.ndarray
    combine_right: np.ndarray
    combine_cpu: np.ndarray
    combine_written: np.ndarray
    child_index: np.ndarray
    child_payload: np.ndarray

    @property
    def n_combines(self) -> int:
        return int(self.combine_left.size)

    @property
    def total_read_bytes(self) -> int:
        """Per-read traffic (no cache): each combine reads both parents."""
        return int(
            self.member_payload_bytes[self.combine_left].sum()
            + self.member_payload_bytes[self.combine_right].sum()
        )


@dataclass
class EclatTaskTrace:
    """The full per-level cost trace of one Eclat run."""

    levels: list[EclatLevelTrace]
    build_ops: int

    @property
    def n_toplevel_tasks(self) -> int:
        return self.levels[0].n_members if self.levels else 0

    @property
    def max_depth(self) -> int:
        return max((lv.depth for lv in self.levels), default=0)

    def total_combines(self) -> int:
        return sum(lv.n_combines for lv in self.levels)


class EclatTrace:
    """An :class:`repro.core.eclat.EclatSink` recording the level structure."""

    def __init__(self) -> None:
        self._build_ops = 0
        self._singleton_payloads: list[int] = []
        # Per depth: parallel lists of combine records.
        self._combines: dict[int, dict[str, list[int]]] = {}

    # -- sink protocol -------------------------------------------------------

    def on_singletons(
        self,
        n_frequent: int,
        build_cost: OpCost,
        payload_bytes: list[int] | None = None,
    ) -> None:
        self._build_ops = build_cost.cpu_ops
        self._singleton_payloads = list(payload_bytes or [])

    def on_combine(
        self,
        depth: int,
        left_index: int,
        right_index: int,
        cost: OpCost,
        child_payload_bytes: int,
        child_index: int,
    ) -> None:
        bucket = self._combines.get(depth)
        if bucket is None:
            bucket = {
                "left": [], "right": [], "cpu": [],
                "written": [], "child": [], "child_payload": [],
            }
            self._combines[depth] = bucket
        bucket["left"].append(left_index)
        bucket["right"].append(right_index)
        bucket["cpu"].append(cost.cpu_ops)
        bucket["written"].append(cost.bytes_written)
        bucket["child"].append(child_index)
        bucket["child_payload"].append(child_payload_bytes)

    # -- finalize ---------------------------------------------------------------

    def finalize(self) -> EclatTaskTrace:
        levels: list[EclatLevelTrace] = []
        member_payloads = np.asarray(self._singleton_payloads, np.int64)
        creator = np.full(member_payloads.size, -1, np.int64)

        for depth in sorted(self._combines):
            bucket = self._combines[depth]
            child_index = np.asarray(bucket["child"], np.int64)
            child_payload = np.asarray(bucket["child_payload"], np.int64)
            combine_left = np.asarray(bucket["left"], np.int64)
            level = EclatLevelTrace(
                depth=depth,
                n_members=int(member_payloads.size),
                member_payload_bytes=member_payloads,
                creator_task=creator,
                combine_left=combine_left,
                combine_right=np.asarray(bucket["right"], np.int64),
                combine_cpu=np.asarray(bucket["cpu"], np.int64),
                combine_written=np.asarray(bucket["written"], np.int64),
                child_index=child_index,
                child_payload=child_payload,
            )
            levels.append(level)

            # Next level's members, in global-index order.
            frequent = child_index >= 0
            n_children = int(frequent.sum())
            member_payloads = np.zeros(n_children, np.int64)
            creator = np.full(n_children, -1, np.int64)
            member_payloads[child_index[frequent]] = child_payload[frequent]
            creator[child_index[frequent]] = combine_left[frequent]

        return EclatTaskTrace(levels=levels, build_ops=self._build_ops)


@dataclass
class EclatToplevelView:
    """Depth-first task view: one task per frequent 1-item prefix.

    This is the paper's stated parallelization (Section IV): the OpenMP
    loop covers the top-level members only and each iteration owns its
    whole recursive subtree, so all deeper verticals are private to the
    executing thread.  Only the depth-1 combines read *shared* data (the
    singleton verticals from the loader).
    """

    n_tasks: int
    cpu_ops: np.ndarray
    bytes_read: np.ndarray
    bytes_written: np.ndarray
    shared_read_bytes: np.ndarray
    #: Shared bytes when each distinct singleton payload is fetched once
    #: per task (cache-resident depth-1 working set).
    shared_distinct_bytes: np.ndarray
    n_combines: np.ndarray
    build_ops: int

    @property
    def private_read_bytes(self) -> np.ndarray:
        return self.bytes_read - self.shared_read_bytes


def toplevel_view(trace: EclatTaskTrace) -> EclatToplevelView:
    """Aggregate a level trace into depth-first top-level tasks.

    Each combine is attributed to the top-level ancestor of its left
    member, found by walking the creator chain level by level.
    """
    if not trace.levels:
        return EclatToplevelView(
            n_tasks=0,
            cpu_ops=np.empty(0, np.int64),
            bytes_read=np.empty(0, np.int64),
            bytes_written=np.empty(0, np.int64),
            shared_read_bytes=np.empty(0, np.int64),
            shared_distinct_bytes=np.empty(0, np.int64),
            n_combines=np.empty(0, np.int64),
            build_ops=trace.build_ops,
        )
    level1 = trace.levels[0]
    n_tasks = level1.n_members
    cpu = np.zeros(n_tasks, np.float64)
    read = np.zeros(n_tasks, np.float64)
    written = np.zeros(n_tasks, np.float64)
    shared = np.zeros(n_tasks, np.float64)
    combines = np.zeros(n_tasks, np.int64)

    ancestor = np.arange(n_tasks, dtype=np.int64)  # depth-1: self
    for level in trace.levels:
        owner = ancestor[level.combine_left]
        left_b = level.member_payload_bytes[level.combine_left]
        right_b = level.member_payload_bytes[level.combine_right]
        np.add.at(cpu, owner, level.combine_cpu)
        np.add.at(read, owner, left_b + right_b)
        np.add.at(written, owner, level.combine_written)
        np.add.at(combines, owner, 1)
        if level.depth == 1:
            np.add.at(shared, owner, left_b + right_b)

        # Ancestor array for the next level's members.
        frequent = level.child_index >= 0
        n_children = int(frequent.sum())
        next_anc = np.full(n_children, -1, np.int64)
        next_anc[level.child_index[frequent]] = owner[frequent]
        ancestor = next_anc

    # Under in-order processing, task i's depth-1 loop touches singletons
    # i..n-1 once each when they stay cache-resident.
    singleton_bytes = level1.member_payload_bytes.astype(np.int64)
    suffix = np.cumsum(singleton_bytes[::-1])[::-1] if n_tasks else singleton_bytes
    distinct = np.minimum(suffix, shared.astype(np.int64))

    return EclatToplevelView(
        n_tasks=n_tasks,
        cpu_ops=cpu.astype(np.int64),
        bytes_read=read.astype(np.int64),
        bytes_written=written.astype(np.int64),
        shared_read_bytes=shared.astype(np.int64),
        shared_distinct_bytes=distinct,
        n_combines=combines,
        build_ops=trace.build_ops,
    )
