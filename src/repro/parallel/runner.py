"""High-level orchestration: mine once, simulate a thread sweep.

:func:`run_scalability_study` is the single entry point the benchmarks and
examples use for every scalability experiment: it executes the real miner
once with cost tracing, then replays the trace at each requested thread
count on the machine model, returning runtimes, speedups, and the mining
result itself (so correctness can be asserted in the same breath).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.result import MiningResult
from repro.engine import execute
from repro.datasets.transaction_db import TransactionDatabase
from repro.errors import ConfigurationError
from repro.machine.blacklight import BLACKLIGHT, MachineSpec
from repro.machine.topology import standard_thread_counts
from repro.openmp.schedule import APRIORI_SCHEDULE, ECLAT_SCHEDULE, ScheduleSpec
from repro.parallel.apriori_parallel import BasePlacement, apriori_time_curve
from repro.parallel.eclat_parallel import eclat_time_curve
from repro.parallel.tasks import AprioriTrace, EclatTrace
from repro.parallel.timing import SimulatedTime
from repro.representations import get_representation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import ObsContext


@dataclass
class ScalabilityStudy:
    """One (dataset, algorithm, representation, support) scalability curve."""

    dataset: str
    algorithm: str
    representation: str
    min_support: float | int
    thread_counts: list[int]
    times: dict[int, SimulatedTime]
    mining_result: MiningResult
    machine: str = "blacklight"
    notes: dict[str, object] = field(default_factory=dict)
    #: The collected cost trace (AprioriTrace or EclatTaskTrace), kept so
    #: callers can re-simulate at other thread counts or machine specs
    #: without re-mining.
    trace: object = None

    def label(self) -> str:
        """Row label in the paper's ``dataset@support`` style."""
        if isinstance(self.min_support, float):
            return f"{self.dataset}@{self.min_support:g}"
        return f"{self.dataset}@{self.min_support}abs"

    def runtime(self, n_threads: int) -> float:
        return self.times[n_threads].total_seconds

    def runtimes(self) -> dict[int, float]:
        return {t: s.total_seconds for t, s in self.times.items()}

    def speedups(self, baseline_threads: int = 1) -> dict[int, float]:
        """Speedup relative to the baseline thread count (paper: 1 thread)."""
        if baseline_threads not in self.times:
            raise ConfigurationError(
                f"baseline {baseline_threads} threads not in the sweep "
                f"{sorted(self.times)}"
            )
        base = self.times[baseline_threads].total_seconds
        return {
            t: (base / s.total_seconds if s.total_seconds > 0 else float("inf"))
            for t, s in self.times.items()
        }

    def peak_speedup(self) -> tuple[int, float]:
        """(thread count, speedup) of the best point on the curve."""
        ups = self.speedups()
        best = max(ups, key=lambda t: ups[t])
        return best, ups[best]


def run_scalability_study(
    db: TransactionDatabase,
    algorithm: str,
    representation: str,
    min_support: float | int,
    thread_counts: list[int] | None = None,
    machine: MachineSpec = BLACKLIGHT,
    schedule: ScheduleSpec | None = None,
    base_placement: BasePlacement = "master",
    eclat_task_mode: str = "toplevel",
    obs: "ObsContext | None" = None,
    obs_threads: int | None = None,
    ledger=None,
) -> ScalabilityStudy:
    """Mine once with tracing, then simulate every requested thread count.

    ``eclat_task_mode`` selects the Eclat decomposition ("toplevel" = the
    paper's depth-first prefix tasks; "level" = the level-synchronous
    ablation); ignored for Apriori.

    ``obs`` threads an observability context end-to-end: the miner records
    per-level/per-depth counters and wall-clock spans, and one point of
    the replay sweep (``obs_threads``, default the largest count) records
    chunk trace events plus region bottleneck metrics.  ``None`` (the
    default) runs the exact uninstrumented code path.

    Host wall-clock cost of the two phases is always measured and stored in
    ``notes["wall_mine_seconds"]`` / ``notes["wall_replay_seconds"]``, and
    an end-of-study :func:`repro.obs.sample_rusage` snapshot in
    ``notes["rusage"]``, so real cost stays visible alongside simulated
    seconds.  ``ledger`` appends a ``kind="simulate"`` run record (same
    default resolution as :func:`repro.mine`).
    """
    from repro.obs.ledger import default_ledger, record_run
    from repro.obs.metrics import sample_rusage

    if algorithm not in ("apriori", "eclat"):
        raise ConfigurationError(
            f"algorithm must be 'apriori' or 'eclat', got {algorithm!r}"
        )
    counts = thread_counts if thread_counts is not None else standard_thread_counts()
    rep = get_representation(representation)

    trace: object
    cpu_start = time.process_time()
    wall_start = time.perf_counter()
    if algorithm == "apriori":
        sink = AprioriTrace()
        run = execute(
            db, algorithm="apriori", min_support=min_support,
            representation=rep, sink=sink, obs=obs,
        )
        sched = schedule if schedule is not None else APRIORI_SCHEDULE
        trace = sink
        wall_mined = time.perf_counter()
        times = apriori_time_curve(
            sink, counts, machine, sched, base_placement,
            obs=obs, obs_threads=obs_threads,
        )
    else:
        esink = EclatTrace()
        run = execute(
            db, algorithm="eclat", min_support=min_support,
            representation=rep, sink=esink, obs=obs,
        )
        sched = schedule if schedule is not None else ECLAT_SCHEDULE
        trace = esink.finalize()
        wall_mined = time.perf_counter()
        times = eclat_time_curve(
            trace, counts, machine, sched, base_placement, eclat_task_mode,
            obs=obs, obs_threads=obs_threads,
        )
    wall_replayed = time.perf_counter()

    for simulated in times.values():
        simulated.representation = rep.name

    if obs is not None:
        obs.metrics.gauge("wall.mine_s").set(wall_mined - wall_start)
        obs.metrics.gauge("wall.replay_s").set(wall_replayed - wall_mined)
        obs.sink.wall_event(
            "mine", wall_start, wall_mined, cat="phase",
            args={"algorithm": algorithm, "representation": rep.name},
        )
        obs.sink.wall_event(
            "replay", wall_mined, wall_replayed, cat="phase",
            args={"thread_counts": list(counts)},
        )

    study = ScalabilityStudy(
        dataset=db.name,
        algorithm=algorithm,
        representation=rep.name,
        min_support=min_support,
        thread_counts=counts,
        times=times,
        mining_result=run.result,
        machine=machine.name,
        notes={
            "schedule": str(sched),
            "base_placement": base_placement,
            "eclat_task_mode": eclat_task_mode if algorithm == "eclat" else None,
            "wall_mine_seconds": wall_mined - wall_start,
            "wall_replay_seconds": wall_replayed - wall_mined,
            "rusage": sample_rusage(),
        },
        trace=trace,
    )
    if ledger is not None or default_ledger() is not None:
        record_run(
            "simulate",
            db=db,
            config={
                "algorithm": algorithm,
                "representation": rep.name,
                "machine": machine.name,
                "min_support": run.result.min_support,
                "schedule": str(sched),
                "base_placement": base_placement,
                "eclat_task_mode": (
                    eclat_task_mode if algorithm == "eclat" else None
                ),
                "thread_counts": list(counts),
            },
            wall_seconds=wall_replayed - wall_start,
            cpu_seconds=time.process_time() - cpu_start,
            n_itemsets=len(run.result),
            obs=obs,
            ledger=ledger,
            extra={"runtimes": {str(t): s for t, s in study.runtimes().items()}},
        )
    return study
