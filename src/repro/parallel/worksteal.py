"""Deque-based work-stealing task scheduler (Kambadur et al. style).

The paper's finding 4 is a structural ceiling: parallel Apriori and Eclat
only parallelize the *outermost* candidate/class loop, so a dataset whose
frequent-item count is below the thread count (T40I10D100K, accidents)
cannot saturate the machine no matter how fast each task runs.  *Extending
Task Parallelism for Frequent Pattern Mining* removes that ceiling by
spawning nested subtree tasks and balancing them with work stealing; this
module is that scheduler, factored out so both process-pool backends
(:mod:`repro.backends.shared_memory_backend`,
:mod:`repro.backends.multiprocessing_backend`) can drive it in place of
one-task-per-top-level-class dispatch.

Mechanics (the classic Cilk/ABP discipline, adapted to a parent-mediated
process pool):

* **per-worker local deques** — every worker owns one deque of pending
  task ids; tasks a worker spawns land on its own deque;
* **LIFO pop** — a worker takes its next task from the *top* (most
  recently spawned: depth-first order, best cache locality on its
  subtree);
* **FIFO steal** — an idle worker steals from the *bottom* of a victim's
  deque (the oldest entries, which root the largest remaining subtrees,
  so one steal buys the most work);
* **steal-half** — a steal transfers half the victim's deque (rounded
  up), not one task, amortizing the steal cost over many tasks;
* **termination detection** — the deques live parent-side (the parent
  dispatches at most one task at a time per worker, exactly like the
  shared-memory pool's fault-attribution ledger), so termination is a
  simple count: all deques empty *and* no task in flight.  No distributed
  Dijkstra-style token protocol is needed because the single orchestrator
  already observes every spawn and every completion.

The scheduler is deliberately mechanism-only: it moves integer task ids
and counts what it did (:class:`WorkStealStats`).  Task payloads, worker
processes, fault recovery, and result merging stay in the backends; the
simulated counterpart that *prices* these decisions on the machine model
lives in :mod:`repro.parallel.worksteal_sim`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Default maximum prefix length (tree depth) at which equivalence classes
#: are still spawned as stealable tasks rather than mined inline.
DEFAULT_SPAWN_DEPTH = 2

#: Default minimum class size (member count) worth spawning: a 2-member
#: class is a single join — cheaper to run inline than to schedule.
DEFAULT_SPAWN_MIN_MEMBERS = 3


@dataclass
class WorkStealStats:
    """Everything the scheduler did, for telemetry and tests."""

    seeded: int = 0
    spawned: int = 0
    executed: int = 0
    steal_events: int = 0
    stolen_tasks: int = 0
    requeued: int = 0
    max_depth: int = 0
    #: Tasks acquired by each worker (own pops + steals + direct steals).
    acquired_by_worker: dict[int, int] = field(default_factory=dict)
    #: Tasks each worker obtained via stealing (as the thief).
    stolen_by_worker: dict[int, int] = field(default_factory=dict)

    def steal_fraction(self) -> float:
        """Fraction of executed acquisitions that crossed worker deques."""
        if self.executed == 0:
            return 0.0
        return self.stolen_tasks / self.executed


class WorkStealScheduler:
    """Per-worker deques with LIFO pop, FIFO steal-half, and exact stats.

    Task ids are opaque non-negative integers owned by the caller; the
    scheduler never inspects payloads.  All methods are called from the
    single orchestrating (parent) thread — there is no internal locking,
    which is what keeps the semantics deterministic enough to unit-test
    steal-by-steal.
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        self.n_workers = n_workers
        #: index 0 == bottom (FIFO steal side), index -1 == top (LIFO pop
        #: side).  Spawns append to the top; steals pop from the bottom.
        self._deques: list[deque[int]] = [deque() for _ in range(n_workers)]
        self.stats = WorkStealStats()

    # -- feeding work --------------------------------------------------------

    def seed(self, task_ids: "list[int] | range") -> None:
        """Deal the initial (top-level) tasks round-robin across deques.

        Round-robin seeding means that even before the first steal every
        worker starts on its own share of the outermost loop — the
        behaviour ``schedule(static, 1)`` would give — and stealing only
        has to fix the *imbalance*, not bootstrap all distribution.
        """
        for position, task_id in enumerate(task_ids):
            self._deques[position % self.n_workers].append(task_id)
            self.stats.seeded += 1

    def spawn(self, worker_id: int, task_ids: list[int], depth: int = 0) -> None:
        """Push tasks a worker just spawned onto *its own* deque (top).

        ``depth`` is the spawning task's tree depth + 1; it only feeds the
        ``max_depth`` statistic (the backends surface it as a gauge).
        """
        self._check_worker(worker_id)
        self._deques[worker_id].extend(task_ids)
        self.stats.spawned += len(task_ids)
        if depth > self.stats.max_depth:
            self.stats.max_depth = depth

    def requeue(self, worker_id: int, task_id: int) -> None:
        """Return a failed worker's in-flight task to the top of its deque.

        The top, not the bottom: a retried task should run next (it has
        already waited through one full attempt), and its subtree is the
        deepest pending work by construction.
        """
        self._check_worker(worker_id)
        self._deques[worker_id].append(task_id)
        self.stats.requeued += 1

    # -- taking work ---------------------------------------------------------

    def acquire(self, worker_id: int) -> int | None:
        """Next task for ``worker_id``: LIFO pop, else steal-half FIFO.

        Returns ``None`` only when every deque is empty — together with
        the caller's in-flight count, that is the termination condition.
        """
        self._check_worker(worker_id)
        own = self._deques[worker_id]
        if own:
            task_id = own.pop()
            self._bump(worker_id)
            return task_id
        victim = self._pick_victim(worker_id)
        if victim is None:
            return None
        batch = self._steal_half(victim)
        self.stats.steal_events += 1
        self.stats.stolen_tasks += len(batch)
        self.stats.stolen_by_worker[worker_id] = (
            self.stats.stolen_by_worker.get(worker_id, 0) + len(batch)
        )
        # The thief executes the oldest stolen task first (it roots the
        # largest subtree); the rest go on its deque so the next pops
        # continue through the batch in age order before any new spawns.
        first, rest = batch[0], batch[1:]
        own.extend(reversed(rest))
        self._bump(worker_id)
        return first

    def _pick_victim(self, thief: int) -> int | None:
        """The worker with the most pending tasks (ties: lowest id)."""
        best: int | None = None
        best_size = 0
        for worker_id, pending in enumerate(self._deques):
            if worker_id == thief:
                continue
            if len(pending) > best_size:
                best, best_size = worker_id, len(pending)
        return best

    def _steal_half(self, victim: int) -> list[int]:
        """Take ceil(len/2) tasks from the bottom (FIFO end) of a deque."""
        pending = self._deques[victim]
        count = (len(pending) + 1) // 2
        return [pending.popleft() for _ in range(count)]

    # -- bookkeeping ---------------------------------------------------------

    def pending_count(self) -> int:
        """Tasks sitting in deques (excludes anything in flight)."""
        return sum(len(pending) for pending in self._deques)

    def empty(self) -> bool:
        """True when no deque holds work (termination needs in-flight == 0)."""
        return self.pending_count() == 0

    def deque_sizes(self) -> list[int]:
        """Current per-worker deque lengths (telemetry/tests)."""
        return [len(pending) for pending in self._deques]

    def live_snapshot(self, in_flight: int = 0) -> dict[str, int]:
        """The scheduler's view for the live status plane.

        ``in_flight`` is the caller's count of dispatched-but-unreported
        tasks (the scheduler never sees those); ``outstanding`` therefore
        matches the termination condition: 0 means the run is about to end.
        """
        return {
            "outstanding": self.pending_count() + int(in_flight),
            "stolen": self.stats.stolen_tasks,
            "spawned": self.stats.spawned,
        }

    def record_counters(self, obs, prefix: str = "worksteal") -> None:
        """Write the stats into an ObsContext's registry (None is a no-op).

        Counters ``{prefix}.{seeded,spawned,executed,steal_events,
        stolen_tasks,requeued}``, gauges ``{prefix}.max_depth`` /
        ``{prefix}.steal_fraction``, and per-worker
        ``{prefix}.worker{w}.steals``.
        """
        if obs is None:
            return
        stats = self.stats
        metrics = obs.metrics
        for name in (
            "seeded", "spawned", "executed", "steal_events",
            "stolen_tasks", "requeued",
        ):
            value = getattr(stats, name)
            if value:
                metrics.counter(f"{prefix}.{name}").inc(value)
        metrics.gauge(f"{prefix}.max_depth").set(float(stats.max_depth))
        metrics.gauge(f"{prefix}.steal_fraction").set(stats.steal_fraction())
        for worker_id, count in sorted(stats.stolen_by_worker.items()):
            metrics.counter(f"{prefix}.worker{worker_id}.steals").inc(count)

    def _bump(self, worker_id: int) -> None:
        self.stats.executed += 1
        self.stats.acquired_by_worker[worker_id] = (
            self.stats.acquired_by_worker.get(worker_id, 0) + 1
        )

    def _check_worker(self, worker_id: int) -> None:
        if not 0 <= worker_id < self.n_workers:
            raise ConfigurationError(
                f"worker_id {worker_id} outside [0, {self.n_workers})"
            )


def resolve_spawn_policy(
    spawn_depth: int | None, spawn_min_members: int | None
) -> tuple[int, int]:
    """Validate and default the nested-spawn thresholds.

    ``spawn_depth`` is the largest prefix length still spawned as tasks
    (0 disables nesting entirely — pure top-level dispatch, the paper's
    original decomposition); ``spawn_min_members`` is the smallest class
    worth scheduling instead of mining inline.
    """
    depth = DEFAULT_SPAWN_DEPTH if spawn_depth is None else spawn_depth
    min_members = (
        DEFAULT_SPAWN_MIN_MEMBERS if spawn_min_members is None
        else spawn_min_members
    )
    if depth < 0:
        raise ConfigurationError(f"spawn_depth must be >= 0, got {depth}")
    if min_members < 2:
        raise ConfigurationError(
            f"spawn_min_members must be >= 2, got {min_members}"
        )
    return depth, min_members
