"""Shared result types for the simulated parallel runs."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RegionBreakdown:
    """One parallel region's simulated time and its bottleneck split."""

    label: str
    time: float
    makespan: float
    link_bound: float
    fork_join: float
    serial: float = 0.0

    @property
    def link_limited(self) -> bool:
        return self.link_bound > self.makespan


@dataclass
class SimulatedTime:
    """Simulated wall time of one mining run at one thread count."""

    algorithm: str
    representation: str
    n_threads: int
    total_seconds: float
    load_seconds: float
    regions: list[RegionBreakdown] = field(default_factory=list)

    @property
    def serial_seconds(self) -> float:
        return self.load_seconds + sum(r.serial for r in self.regions)

    @property
    def link_limited_regions(self) -> list[str]:
        """Labels of the regions throttled by the interconnect."""
        return [r.label for r in self.regions if r.link_limited]

    def summary(self) -> str:
        flag = (
            f"; link-limited: {', '.join(self.link_limited_regions)}"
            if self.link_limited_regions
            else ""
        )
        return (
            f"{self.algorithm}/{self.representation} @ {self.n_threads} threads: "
            f"{self.total_seconds * 1e3:.3f} ms "
            f"(serial {self.serial_seconds * 1e3:.3f} ms{flag})"
        )
