"""NumPy-packed vertical bitvector kernels (the vectorized substrate).

The classic :mod:`repro.representations.bitvector` stores one ``uint64``
word array per candidate and combines candidates one pair at a time.  This
module is the throughput-oriented sibling: transaction masks are packed
eight-per-byte with :func:`np.packbits` (``bitorder="little"``), support
counting is a byte-wise ``bitwise_and`` followed by a popcount through a
256-entry lookup table, and — crucially — whole *blocks* of candidates can
be combined in one NumPy call.  That block form is what the ``vectorized``
execution backend uses: Apriori counts an entire candidate generation with
one ``L & R`` over two stacked matrices, and Eclat intersects one class
member against every later sibling in a single broadcast AND.

The per-pair :class:`NumpyBitvectorRepresentation` keeps the standard
:class:`~repro.representations.base.Representation` contract so the packed
format also drops into the serial and multiprocessing backends unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.transaction_db import TransactionDatabase
from repro.representations.base import (
    OpCost,
    Representation,
    Vertical,
    check_same_universe,
)

PACKED_DTYPE = np.uint8
#: Bits covered by one payload element (one packed byte).
PACKED_BITS = 8

#: Popcount lookup: POPCOUNT8[b] is the number of set bits in byte b.
POPCOUNT8 = np.array([bin(b).count("1") for b in range(256)], dtype=np.uint16)


def bytes_for(n_transactions: int) -> int:
    """Number of packed bytes needed to cover ``n_transactions`` bits."""
    return (n_transactions + PACKED_BITS - 1) // PACKED_BITS


def pack_tids(tids: np.ndarray, n_transactions: int) -> np.ndarray:
    """Pack a sorted tid array into a little-endian uint8 bitmask."""
    mask = np.zeros(n_transactions, dtype=np.uint8)
    if tids.size:
        mask[tids] = 1
    return np.packbits(mask, bitorder="little")


def unpack_tids(packed: np.ndarray, n_transactions: int) -> np.ndarray:
    """Unpack a byte bitmask back into a sorted int32 tid array."""
    if packed.size == 0:
        return np.empty(0, dtype=np.int32)
    bits = np.unpackbits(packed, count=n_transactions, bitorder="little")
    return np.nonzero(bits)[0].astype(np.int32)


def popcount_bytes(packed: np.ndarray) -> int:
    """Total set bits of one packed mask (popcount via table lookup)."""
    if packed.size == 0:
        return 0
    return int(POPCOUNT8[packed].sum())


def popcount_rows(matrix: np.ndarray) -> np.ndarray:
    """Per-row popcounts of a 2-D packed matrix, as int64."""
    if matrix.size == 0:
        return np.zeros(matrix.shape[0], dtype=np.int64)
    return POPCOUNT8[matrix].sum(axis=1, dtype=np.int64)


#: Rows packed per block by :func:`pack_database`; bounds the transient
#: unpacked mask to ``PACK_BLOCK_ROWS × n_transactions`` bytes.
PACK_BLOCK_ROWS = 64


def pack_database(db: TransactionDatabase) -> np.ndarray:
    """One packed row per item: the whole database as an n_items × n_bytes
    bit matrix (the vectorized backends' generation-1 operand).

    Packing proceeds in row blocks of :data:`PACK_BLOCK_ROWS` items, so
    peak transient memory is O(block × n_transactions) rather than the full
    dense ``n_items × n_transactions`` mask (~350 MB for the pumsb
    surrogate); only the packed output is ever held for all items at once.
    """
    n = db.n_transactions
    out = np.zeros((db.n_items, bytes_for(n)), dtype=PACKED_DTYPE)
    if db.n_items == 0 or n == 0:
        return out
    tidlists = db.tidlists()
    for start in range(0, db.n_items, PACK_BLOCK_ROWS):
        stop = min(start + PACK_BLOCK_ROWS, db.n_items)
        mask = np.zeros((stop - start, n), dtype=np.uint8)
        for row, item in enumerate(range(start, stop)):
            tids = tidlists[item]
            if tids.size:
                mask[row, tids] = 1
        out[start:stop] = np.packbits(mask, axis=1, bitorder="little")
    return out


def intersect_block(left: np.ndarray, rights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """AND one packed row against a block of packed rows.

    Returns ``(children, supports)`` where ``children[j] = left & rights[j]``
    and ``supports[j]`` is its popcount.  This is the Eclat class kernel:
    one call covers every join of a class member with its later siblings.
    """
    children = np.bitwise_and(rights, left)
    return children, popcount_rows(children)


def intersect_pairs(lefts: np.ndarray, rights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise AND of two equally-shaped packed matrices.

    This is the Apriori generation kernel: stack every candidate's two
    parents into ``lefts`` / ``rights`` and count the whole generation's
    supports with one ``bitwise_and`` plus one table-lookup popcount.
    """
    children = np.bitwise_and(lefts, rights)
    return children, popcount_rows(children)


class NumpyBitvectorRepresentation(Representation):
    """Packed uint8 bitmasks with lookup-table popcount support counting."""

    name = "bitvector_numpy"

    def build_singletons(
        self, db: TransactionDatabase, min_support: int = 0
    ) -> list[Vertical]:
        empty = np.empty(0, dtype=PACKED_DTYPE)
        n = db.n_transactions
        singletons = []
        for tids in db.tidlists():
            support = int(tids.size)
            payload = pack_tids(tids, n) if support >= min_support else empty
            singletons.append(Vertical(payload=payload, support=support))
        return singletons

    def combine(self, left: Vertical, right: Vertical) -> tuple[Vertical, OpCost]:
        a, b = left.payload, right.payload
        check_same_universe(a, b, "bitvector_numpy")
        out = a & b
        support = popcount_bytes(out)
        n_bytes = int(a.size)
        cost = OpCost(
            # One AND plus one popcount lookup per byte lane.
            cpu_ops=2 * n_bytes,
            bytes_read=2 * n_bytes,
            bytes_written=n_bytes,
        )
        return Vertical(payload=out, support=support), cost

    def payload_bytes(self, vertical: Vertical) -> int:
        return int(vertical.payload.size)
