"""Vertical transaction representations: tidset, bitvector, diffset."""

from repro.representations.base import (
    BYTES_PER_TID,
    BYTES_PER_WORD,
    OpCost,
    Representation,
    Vertical,
    ZERO_COST,
)
from repro.representations.tidset import TidsetRepresentation, intersect_sorted
from repro.representations.bitvector import (
    BitvectorRepresentation,
    bits_to_tids,
    popcount,
    tids_to_bits,
    words_for,
)
from repro.representations.bitvector_numpy import (
    NumpyBitvectorRepresentation,
    intersect_block,
    intersect_pairs,
    pack_database,
    pack_tids,
    popcount_bytes,
    popcount_rows,
    unpack_tids,
)
from repro.representations.diffset import DiffsetRepresentation, setdiff_sorted
from repro.representations.hybrid import HybridRepresentation, HybridVertical
from repro.representations.horizontal import HorizontalCounter, HorizontalCountResult
from repro.representations import convert, memory

#: Registry used by miners and benches to resolve a representation by name.
REPRESENTATIONS: dict[str, type[Representation]] = {
    "tidset": TidsetRepresentation,
    "bitvector": BitvectorRepresentation,
    "bitvector_numpy": NumpyBitvectorRepresentation,
    "diffset": DiffsetRepresentation,
    "hybrid": HybridRepresentation,
}


def get_representation(name: str) -> Representation:
    """Instantiate a representation by its table name."""
    try:
        return REPRESENTATIONS[name]()
    except KeyError:
        raise KeyError(
            f"unknown representation {name!r}; choose from {sorted(REPRESENTATIONS)}"
        ) from None


__all__ = [
    "OpCost",
    "Vertical",
    "Representation",
    "ZERO_COST",
    "BYTES_PER_TID",
    "BYTES_PER_WORD",
    "TidsetRepresentation",
    "BitvectorRepresentation",
    "NumpyBitvectorRepresentation",
    "DiffsetRepresentation",
    "HybridRepresentation",
    "HybridVertical",
    "HorizontalCounter",
    "HorizontalCountResult",
    "intersect_sorted",
    "setdiff_sorted",
    "tids_to_bits",
    "bits_to_tids",
    "popcount",
    "words_for",
    "pack_tids",
    "unpack_tids",
    "pack_database",
    "popcount_bytes",
    "popcount_rows",
    "intersect_block",
    "intersect_pairs",
    "convert",
    "memory",
    "REPRESENTATIONS",
    "get_representation",
]
