"""Hybrid tidset/diffset representation (dEclat's switching heuristic).

Zaki & Gouda's dEclat does not commit to diffsets globally: each candidate
stores whichever encoding is smaller — the tids it *has* or the tids it
*lost* relative to its prefix — switching from tidset to diffset as soon
as the difference encoding wins, and staying switched below that point.
The paper applies pure diffsets; this module adds the original adaptive
variant as an extension (and the E12 ablation measures what the paper left
on the table).

All four parent-kind combinations reduce to sorted-set kernels:

==============  ==============  ==========================================
left (PX)       right (PY)      child PXY
==============  ==============  ==========================================
tidset t(PX)    tidset t(PY)    ``t = t(PX) ∩ t(PY)``
tidset t(PX)    diffset d(PY)   ``t = t(PX) - d(PY)``
diffset d(PX)   tidset t(PY)    ``t = t(PY) - d(PX)``
diffset d(PX)   diffset d(PY)   ``d = d(PY) - d(PX)`` (support recurrence)
==============  ==============  ==========================================

Whenever the child's tidset is materialized, the encoder keeps ``t`` or
``d = t(PX) - t``, whichever is smaller; once both parents are diffsets the
child stays a diffset (its tidset is no longer available).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.transaction_db import TransactionDatabase
from repro.representations.base import (
    BYTES_PER_TID,
    OpCost,
    Representation,
    Vertical,
)
from repro.representations.diffset import setdiff_sorted
from repro.representations.tidset import TIDSET_DTYPE, intersect_sorted

TIDSET_KIND = 0
DIFFSET_KIND = 1


@dataclass(slots=True)
class HybridVertical(Vertical):
    """A vertical payload tagged with its encoding."""

    kind: int = TIDSET_KIND

    @property
    def is_diffset(self) -> bool:
        return self.kind == DIFFSET_KIND


class HybridRepresentation(Representation):
    """Per-candidate smallest-of-tidset/diffset encoding."""

    name = "hybrid"

    def build_singletons(
        self, db: TransactionDatabase, min_support: int = 0
    ) -> list[Vertical]:
        """Level 1: encode each item as tidset or complement, whichever is
        smaller (the dEclat rule applied from the start, matching the
        paper's level-1 diffsets on dense data)."""
        n = db.n_transactions
        all_tids = np.arange(n, dtype=TIDSET_DTYPE)
        empty = np.empty(0, dtype=TIDSET_DTYPE)
        singletons: list[Vertical] = []
        for tids in db.tidlists():
            support = int(tids.size)
            if support < min_support:
                singletons.append(
                    HybridVertical(payload=empty, support=support)
                )
                continue
            tids32 = tids.astype(TIDSET_DTYPE)
            if support * 2 > n:
                diff = setdiff_sorted(all_tids, tids32)
                singletons.append(
                    HybridVertical(
                        payload=diff, support=support, kind=DIFFSET_KIND
                    )
                )
            else:
                singletons.append(
                    HybridVertical(
                        payload=tids32, support=support, kind=TIDSET_KIND
                    )
                )
        return singletons

    def combine(self, left: Vertical, right: Vertical) -> tuple[Vertical, OpCost]:
        lk = getattr(left, "kind", TIDSET_KIND)
        rk = getattr(right, "kind", TIDSET_KIND)
        a, b = left.payload, right.payload
        cost = OpCost(
            cpu_ops=int(a.size + b.size),
            bytes_read=int((a.size + b.size) * BYTES_PER_TID),
            bytes_written=0,
        )

        if lk == DIFFSET_KIND and rk == DIFFSET_KIND:
            d = setdiff_sorted(b, a)
            support = left.support - int(d.size)
            child = HybridVertical(payload=d, support=support, kind=DIFFSET_KIND)
            return child, self._with_written(cost, d)

        if lk == TIDSET_KIND and rk == TIDSET_KIND:
            t = intersect_sorted(a, b)
        elif lk == TIDSET_KIND:  # right is a diffset
            t = setdiff_sorted(a, b)
        else:  # left diffset, right tidset
            t = setdiff_sorted(b, a)
        support = int(t.size)

        # Adaptive encoding: keep the child's tidset or its difference
        # from the left parent, whichever is smaller.  The diffset is only
        # available when the left parent's tidset is (lk == TIDSET_KIND).
        if lk == TIDSET_KIND and left.support - support < support:
            d = setdiff_sorted(a, t)
            cost = cost + OpCost(cpu_ops=int(a.size + t.size))
            child = HybridVertical(
                payload=d, support=support, kind=DIFFSET_KIND
            )
            return child, self._with_written(cost, d)
        child = HybridVertical(payload=t, support=support, kind=TIDSET_KIND)
        return child, self._with_written(cost, t)

    @staticmethod
    def _with_written(cost: OpCost, payload: np.ndarray) -> OpCost:
        return OpCost(
            cpu_ops=cost.cpu_ops,
            bytes_read=cost.bytes_read,
            bytes_written=int(payload.size) * BYTES_PER_TID,
        )

    def payload_bytes(self, vertical: Vertical) -> int:
        return int(vertical.payload.size) * BYTES_PER_TID
