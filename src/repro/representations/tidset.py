"""Vertical tidset representation (Figure 1b).

Each candidate carries the sorted array of transaction ids that contain it.
Support counting is set intersection: ``t(PXY) = t(PX) ∩ t(PY)`` and
``support(PXY) = |t(PXY)|``.  The intersection of two sorted arrays costs one
pass over both operands, which is exactly what :class:`OpCost` records.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.transaction_db import TransactionDatabase
from repro.representations.base import (
    BYTES_PER_TID,
    OpCost,
    Representation,
    Vertical,
    check_same_universe,
)

TIDSET_DTYPE = np.int32


class TidsetRepresentation(Representation):
    """Sorted transaction-id lists with intersection-based support."""

    name = "tidset"

    def build_singletons(
        self, db: TransactionDatabase, min_support: int = 0
    ) -> list[Vertical]:
        empty = np.empty(0, dtype=TIDSET_DTYPE)
        singletons = []
        for tids in db.tidlists():
            support = int(tids.size)
            payload = tids.astype(TIDSET_DTYPE) if support >= min_support else empty
            singletons.append(Vertical(payload=payload, support=support))
        return singletons

    def combine(self, left: Vertical, right: Vertical) -> tuple[Vertical, OpCost]:
        a, b = left.payload, right.payload
        check_same_universe(a, b, "tidset")
        out = intersect_sorted(a, b)
        cost = OpCost(
            cpu_ops=int(a.size + b.size),
            bytes_read=int((a.size + b.size) * BYTES_PER_TID),
            bytes_written=int(out.size * BYTES_PER_TID),
        )
        return Vertical(payload=out, support=int(out.size)), cost

    def payload_bytes(self, vertical: Vertical) -> int:
        return int(vertical.payload.size) * BYTES_PER_TID


def intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two sorted, duplicate-free tid arrays.

    ``np.intersect1d(assume_unique=True)`` sorts its concatenated input;
    for already-sorted operands a searchsorted membership test is both
    faster and a faithful model of the linear merge the C implementation
    performs.
    """
    if a.size == 0 or b.size == 0:
        return np.empty(0, dtype=a.dtype)
    if a.size > b.size:
        a, b = b, a
    idx = np.searchsorted(b, a)
    idx[idx == b.size] = 0
    mask = b[idx] == a
    return a[mask]
