"""Conversions between the vertical formats.

Used by the property-test suite to check the cross-representation
identities (Section II-B is an equivalence argument: all three formats
encode the same cover sets) and by callers who mine with one format but want
tid-level output.
"""

from __future__ import annotations

import numpy as np

from repro.representations.base import Vertical
from repro.representations.bitvector import bits_to_tids, tids_to_bits
from repro.representations.diffset import setdiff_sorted
from repro.representations.tidset import TIDSET_DTYPE


def tidset_to_bitvector(v: Vertical, n_transactions: int) -> Vertical:
    """Pack a tidset candidate into the bitvector format."""
    return Vertical(
        payload=tids_to_bits(v.payload, n_transactions), support=v.support
    )


def bitvector_to_tidset(v: Vertical) -> Vertical:
    """Unpack a bitvector candidate into the tidset format."""
    return Vertical(payload=bits_to_tids(v.payload), support=v.support)


def tidset_to_diffset(v: Vertical, prefix_tids: np.ndarray) -> Vertical:
    """Diffset of a candidate relative to its prefix's tidset.

    ``d(PX) = t(P) - t(PX)``; for generation 1 pass
    ``np.arange(n_transactions)`` as the prefix cover.
    """
    prefix32 = prefix_tids.astype(TIDSET_DTYPE)
    payload = setdiff_sorted(prefix32, v.payload.astype(TIDSET_DTYPE))
    return Vertical(payload=payload, support=v.support)


def diffset_to_tidset(v: Vertical, prefix_tids: np.ndarray) -> Vertical:
    """Invert :func:`tidset_to_diffset` given the same prefix cover."""
    prefix32 = prefix_tids.astype(TIDSET_DTYPE)
    payload = setdiff_sorted(prefix32, v.payload.astype(TIDSET_DTYPE))
    return Vertical(payload=payload, support=v.support)
