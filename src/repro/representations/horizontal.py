"""Horizontal support counting — the baseline the vertical formats replaced.

The original Apriori counted support by scanning every transaction and
incrementing a shared counter per contained candidate.  The paper (Section
III) notes this forces locks/atomics in a parallel setting because multiple
threads race on the same counter, and quotes roughly an order of magnitude
of speedup for switching to vertical formats.  We keep a faithful horizontal
counter for three reasons: it is the natural test oracle, it lets the E9/E10
benches quantify the vertical advantage, and it models the race-prone
counter array (tracking how many increments would have contended).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.datasets.transaction_db import TransactionDatabase
from repro.representations.base import OpCost


@dataclass(frozen=True)
class HorizontalCountResult:
    """Supports plus the cost profile of the horizontal scan."""

    supports: np.ndarray
    cost: OpCost
    #: Counter increments performed; in a parallel horizontal counter every
    #: one of these is a potential race on shared memory.
    contended_increments: int


class HorizontalCounter:
    """Support counting by repeated database scans (Figure 1a layout)."""

    name = "horizontal"

    def __init__(self, db: TransactionDatabase) -> None:
        self._db = db

    def count(self, candidates: Sequence[Sequence[int]]) -> HorizontalCountResult:
        """Count the support of each candidate with one pass over the DB.

        Each candidate is checked against each transaction via a sorted
        subset test; complexity is O(|DB| * sum |c|) element operations,
        which dwarfs the vertical formats for later generations — this is
        the Table-less claim of Section II-B made measurable.
        """
        cand_arrays = [
            np.asarray(sorted(set(int(i) for i in c)), dtype=np.int32)
            for c in candidates
        ]
        supports = np.zeros(len(cand_arrays), dtype=np.int64)
        cpu_ops = 0
        increments = 0
        for transaction in self._db:
            t_size = int(transaction.size)
            for j, cand in enumerate(cand_arrays):
                if cand.size > t_size:
                    # Rejected on length alone: one comparison.
                    cpu_ops += 1
                    continue
                # Sorted-merge subset test walks both sequences.
                cpu_ops += int(cand.size) + t_size
                if np.isin(cand, transaction, assume_unique=True).all():
                    supports[j] += 1
                    increments += 1
        bytes_touched = cpu_ops * 4
        return HorizontalCountResult(
            supports=supports,
            cost=OpCost(cpu_ops=cpu_ops, bytes_read=bytes_touched, bytes_written=0),
            contended_increments=increments,
        )

    def support_of(self, candidate: Sequence[int]) -> int:
        """Support of a single candidate (thin wrapper over :meth:`count`)."""
        return int(self.count([candidate]).supports[0])
