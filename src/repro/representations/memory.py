"""Memory footprint accounting for candidate generations.

Section V-A attributes Apriori's tidset/bitvector non-scalability to payload
size: "the size of tidset and bitvector is generally one order of magnitude
larger than the diffset's".  This module measures exactly that, per
generation, for any representation — feeding both the E9 ablation bench and
the machine model's placement decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.representations.base import Representation, Vertical


@dataclass(frozen=True)
class GenerationFootprint:
    """Payload statistics for one candidate generation."""

    representation: str
    generation: int
    n_candidates: int
    total_bytes: int
    max_candidate_bytes: int

    @property
    def mean_candidate_bytes(self) -> float:
        if self.n_candidates == 0:
            return 0.0
        return self.total_bytes / self.n_candidates


def measure_generation(
    representation: Representation,
    verticals: list[Vertical],
    generation: int,
) -> GenerationFootprint:
    """Footprint of one generation's candidate payloads."""
    sizes = [representation.payload_bytes(v) for v in verticals]
    return GenerationFootprint(
        representation=representation.name,
        generation=generation,
        n_candidates=len(verticals),
        total_bytes=int(sum(sizes)),
        max_candidate_bytes=int(max(sizes, default=0)),
    )


def footprint_ratio(
    a: GenerationFootprint, b: GenerationFootprint
) -> float:
    """How many times larger generation ``a`` is than ``b`` (by total bytes).

    Returns ``inf`` when ``b`` is empty but ``a`` is not, and 1.0 when both
    are empty — convenient for asserting the paper's order-of-magnitude
    claim without dividing by zero.
    """
    if b.total_bytes == 0:
        return 1.0 if a.total_bytes == 0 else float("inf")
    return a.total_bytes / b.total_bytes
