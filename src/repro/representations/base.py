"""Common machinery for the three vertical transaction representations.

The paper (Section II-B) couples each mining algorithm with one of three
vertical formats: the **tidset** (sorted transaction-id list per candidate),
the **bitvector** (fixed-width bitmask per candidate), and the **diffset**
(tids the candidate *lost* relative to its prefix, with the dEclat support
recurrence).  All three share one contract here:

* :meth:`Representation.build_singletons` turns a horizontal database into
  one :class:`Vertical` per item (generation 1);
* :meth:`Representation.combine` fuses two same-prefix parents ``PX`` and
  ``PY`` into the child ``PXY``, returning the child's vertical data, its
  support, and an :class:`OpCost` record.

The :class:`OpCost` record is what ties the algorithms to the machine
simulator: it counts the *actual* element operations and bytes moved by each
combine, measured on the real data, so the simulated NUMA traffic is driven
by genuine workload numbers rather than analytic guesses.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.datasets.transaction_db import TransactionDatabase
from repro.errors import RepresentationError

#: Bytes per transaction id in tidset/diffset payloads (int32 tids).
BYTES_PER_TID = 4
#: Bytes per bitvector machine word (uint64).
BYTES_PER_WORD = 8


@dataclass(frozen=True, slots=True)
class OpCost:
    """Operation cost of one representation kernel invocation.

    Attributes
    ----------
    cpu_ops:
        Element-level operations executed (comparisons for merges, word ops
        for AND/popcount).  The machine model divides this by a core's
        element rate.
    bytes_read / bytes_written:
        Payload bytes moved.  The machine model routes reads through local
        or remote memory depending on where the operand pages live.
    """

    cpu_ops: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def __add__(self, other: "OpCost") -> "OpCost":
        return OpCost(
            self.cpu_ops + other.cpu_ops,
            self.bytes_read + other.bytes_read,
            self.bytes_written + other.bytes_written,
        )

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written


ZERO_COST = OpCost()


@dataclass(slots=True)
class Vertical:
    """Vertical data for one candidate itemset.

    ``payload`` is representation-specific (sorted int32 tids, uint64 words,
    or sorted int32 diff-tids); ``support`` is always the candidate's absolute
    support, which diffsets cannot recover from the payload alone and the
    other formats cache to avoid recounting.
    """

    payload: np.ndarray
    support: int


class Representation(ABC):
    """Strategy interface implemented by tidset, bitvector, and diffset."""

    #: Short name used in tables ("tidset" / "bitvector" / "diffset").
    name: str = "abstract"

    @abstractmethod
    def build_singletons(
        self, db: TransactionDatabase, min_support: int = 0
    ) -> list[Vertical]:
        """One :class:`Vertical` per item id in ``db`` (generation 1).

        Every item gets an entry with its true support, but payloads are
        only materialized for items meeting ``min_support`` — building a
        census-wide diffset for an item that occurs twice would waste
        hundreds of megabytes for data the miner immediately prunes.
        """

    @abstractmethod
    def combine(self, left: Vertical, right: Vertical) -> tuple[Vertical, OpCost]:
        """Fuse parents ``PX`` (left) and ``PY`` (right) into ``PXY``.

        Both parents must share the same (possibly empty) prefix ``P`` and
        have been built against the same database; this is the caller's
        responsibility (the candidate-generation machinery guarantees it).
        """

    @abstractmethod
    def payload_bytes(self, vertical: Vertical) -> int:
        """In-memory payload size of one candidate, in bytes."""

    # -- shared helpers ----------------------------------------------------

    def singleton_build_cost(self, db: TransactionDatabase) -> OpCost:
        """Cost of the initial horizontal-to-vertical pass (one DB scan)."""
        elems = int(sum(t.size for t in db))
        return OpCost(cpu_ops=elems, bytes_read=elems * BYTES_PER_TID,
                      bytes_written=elems * BYTES_PER_TID)

    def generation_bytes(self, verticals: list[Vertical]) -> int:
        """Total payload bytes of one candidate generation."""
        return sum(self.payload_bytes(v) for v in verticals)


def check_same_universe(a: np.ndarray, b: np.ndarray, what: str) -> None:
    """Guard against combining verticals from different databases."""
    if a.dtype != b.dtype:
        raise RepresentationError(
            f"cannot combine {what} payloads with dtypes {a.dtype} and {b.dtype}"
        )
