"""Diffset representation (Zaki & Gouda's dEclat sets, Section II-B / Fig. 2).

A candidate ``PX`` stores the transaction ids it *lost* relative to its
prefix ``P``: ``d(PX) = t(P) - t(PX)``.  For generation 1 the prefix is the
empty itemset, whose tidset is the whole database, so ``d(X)`` is the
complement of ``t(X)``.

Children follow the dEclat recurrence the paper quotes as Equation (1):

.. math::

    d(PXY) = d(PY) - d(PX)
    \\qquad
    support(PXY) = support(PX) - |d(PXY)|

Dense datasets make diffsets dramatically smaller than tidsets (a candidate
present in 95% of transactions keeps only the missing 5%), which is exactly
the property that rescues parallel Apriori on the NUMA machine: less payload
means less interconnect traffic.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.transaction_db import TransactionDatabase
from repro.representations.base import (
    BYTES_PER_TID,
    OpCost,
    Representation,
    Vertical,
    check_same_universe,
)
from repro.representations.tidset import TIDSET_DTYPE


def setdiff_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a - b`` for sorted, duplicate-free tid arrays (linear merge model)."""
    if a.size == 0:
        return np.empty(0, dtype=a.dtype)
    if b.size == 0:
        return a.copy()
    idx = np.searchsorted(b, a)
    idx[idx == b.size] = 0
    keep = b[idx] != a
    return a[keep]


class DiffsetRepresentation(Representation):
    """Difference sets with the dEclat support recurrence."""

    name = "diffset"

    def build_singletons(
        self, db: TransactionDatabase, min_support: int = 0
    ) -> list[Vertical]:
        n = db.n_transactions
        all_tids = np.arange(n, dtype=TIDSET_DTYPE)
        empty = np.empty(0, dtype=TIDSET_DTYPE)
        singletons = []
        for tids in db.tidlists():
            support = int(tids.size)
            if support >= min_support:
                diff = setdiff_sorted(all_tids, tids.astype(TIDSET_DTYPE))
            else:
                diff = empty
            singletons.append(Vertical(payload=diff, support=support))
        return singletons

    def combine(self, left: Vertical, right: Vertical) -> tuple[Vertical, OpCost]:
        """``left`` is PX, ``right`` is PY (X < Y in item order)."""
        d_px, d_py = left.payload, right.payload
        check_same_universe(d_px, d_py, "diffset")
        d_pxy = setdiff_sorted(d_py, d_px)
        support = left.support - int(d_pxy.size)
        cost = OpCost(
            cpu_ops=int(d_px.size + d_py.size),
            bytes_read=int((d_px.size + d_py.size) * BYTES_PER_TID),
            bytes_written=int(d_pxy.size * BYTES_PER_TID),
        )
        return Vertical(payload=d_pxy, support=support), cost

    def payload_bytes(self, vertical: Vertical) -> int:
        return int(vertical.payload.size) * BYTES_PER_TID
