"""Vertical bitvector representation (Figure 1c).

Each candidate carries a fixed-width bitmask over the transaction ids: bit
``t`` is set when transaction ``t`` contains the candidate.  Support counting
is a word-wise AND followed by a population count.  The width is fixed by the
database (``ceil(n_transactions / 64)`` words), which is the property the
paper highlights: dense data compresses well, but *every* candidate pays the
full width regardless of its support, so sparse generations carry dead
weight.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.transaction_db import TransactionDatabase
from repro.representations.base import (
    BYTES_PER_WORD,
    OpCost,
    Representation,
    Vertical,
    check_same_universe,
)

WORD_BITS = 64
WORD_DTYPE = np.uint64


def words_for(n_transactions: int) -> int:
    """Number of 64-bit words needed to cover ``n_transactions`` bits."""
    return (n_transactions + WORD_BITS - 1) // WORD_BITS


def tids_to_bits(tids: np.ndarray, n_transactions: int) -> np.ndarray:
    """Pack a sorted tid array into a 64-bit word bitmask."""
    words = np.zeros(words_for(n_transactions), dtype=WORD_DTYPE)
    if tids.size:
        tid64 = tids.astype(np.uint64)
        np.bitwise_or.at(
            words, (tid64 // WORD_BITS).astype(np.int64),
            WORD_DTYPE(1) << (tid64 % WORD_BITS),
        )
    return words


def bits_to_tids(words: np.ndarray) -> np.ndarray:
    """Unpack a word bitmask back into a sorted int32 tid array."""
    if words.size == 0:
        return np.empty(0, dtype=np.int32)
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return np.nonzero(bits)[0].astype(np.int32)


def popcount(words: np.ndarray) -> int:
    """Total set bits across the mask."""
    if words.size == 0:
        return 0
    return int(np.bitwise_count(words).sum())


class BitvectorRepresentation(Representation):
    """Fixed-width bitmasks with AND + popcount support counting."""

    name = "bitvector"

    def build_singletons(
        self, db: TransactionDatabase, min_support: int = 0
    ) -> list[Vertical]:
        n = db.n_transactions
        empty = np.empty(0, dtype=WORD_DTYPE)
        singletons = []
        for tids in db.tidlists():
            support = int(tids.size)
            words = tids_to_bits(tids, n) if support >= min_support else empty
            singletons.append(Vertical(payload=words, support=support))
        return singletons

    def combine(self, left: Vertical, right: Vertical) -> tuple[Vertical, OpCost]:
        a, b = left.payload, right.payload
        check_same_universe(a, b, "bitvector")
        out = a & b
        support = popcount(out)
        n_words = int(a.size)
        cost = OpCost(
            # One AND plus one popcount per word.
            cpu_ops=2 * n_words,
            bytes_read=2 * n_words * BYTES_PER_WORD,
            bytes_written=n_words * BYTES_PER_WORD,
        )
        return Vertical(payload=out, support=support), cost

    def payload_bytes(self, vertical: Vertical) -> int:
        return int(vertical.payload.size) * BYTES_PER_WORD
