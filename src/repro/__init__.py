"""repro — reproduction of "Frequent Itemset Mining on Large-Scale Shared
Memory Machines" (Zhang, Zhang & Bakos, IEEE CLUSTER 2011).

Public API highlights:

* :func:`repro.apriori`, :func:`repro.eclat`, :func:`repro.fpgrowth` — the
  miners, each usable with the ``tidset``, ``bitvector``, or ``diffset``
  representation.
* :mod:`repro.datasets` — FIMI parsing, Quest-style generation, and the
  Table I benchmark surrogates.
* :mod:`repro.machine` / :mod:`repro.openmp` — the Blacklight NUMA model and
  the OpenMP-style schedule simulator.
* :mod:`repro.parallel` — instrumented parallel Apriori/Eclat and the
  scalability-study harness that regenerates the paper's tables and figures.
* :mod:`repro.obs` — structured tracing (Chrome trace-event sinks for
  Perfetto), metrics registries, and the :class:`ObsContext` every
  pipeline entry point accepts.
"""

from repro import obs
from repro.core import (
    MiningResult,
    apriori,
    brute_force,
    eclat,
    fpgrowth,
    run_apriori,
    run_eclat,
)
from repro.datasets import TransactionDatabase, get_dataset, read_fimi
from repro.obs import ObsContext
from repro.representations import get_representation

__version__ = "1.0.0"

__all__ = [
    "MiningResult",
    "TransactionDatabase",
    "apriori",
    "eclat",
    "fpgrowth",
    "brute_force",
    "run_apriori",
    "run_eclat",
    "get_dataset",
    "read_fimi",
    "get_representation",
    "obs",
    "ObsContext",
    "__version__",
]
