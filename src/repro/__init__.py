"""repro — reproduction of "Frequent Itemset Mining on Large-Scale Shared
Memory Machines" (Zhang, Zhang & Bakos, IEEE CLUSTER 2011).

Public API highlights:

* :func:`repro.mine` — **the** mining entry point: one call covers every
  algorithm × vertical representation × execution backend combination
  (``serial``, ``multiprocessing``, ``vectorized``) behind the engine's
  registry, with typed errors and ``representation="auto"`` selection.
* :mod:`repro.engine` — the execution engine: backend registry,
  :func:`repro.engine.execute` for full run objects (level tables, cost
  traces), and the NumPy packed-bitvector block kernels.
* :func:`repro.apriori`, :func:`repro.eclat`, :func:`repro.fpgrowth`,
  :func:`repro.charm` — engine-routed convenience wrappers; the frequent
  miners take any of the ``tidset``, ``bitvector``, ``bitvector_numpy``,
  or ``diffset`` representations, charm mines *closed* itemsets.
* :class:`repro.ItemsetIndex` — mine once at a low support floor, persist
  a memory-mapped closed-itemset lattice, then answer ``top_k`` /
  ``support_of`` / ``frequent_at`` / ``rules`` at any support above the
  floor without touching the raw database (``repro index build|query|info``
  on the command line).
* :class:`repro.Queryable` — the protocol those queries go through;
  :class:`repro.MiningResult` and :class:`repro.ItemsetIndex` both
  implement it, so analysis and rule-export code runs unchanged on a
  fresh in-memory result or a persisted index.
* :mod:`repro.datasets` — FIMI parsing, Quest-style generation, and the
  Table I benchmark surrogates.
* :mod:`repro.machine` / :mod:`repro.openmp` — the Blacklight NUMA model and
  the OpenMP-style schedule simulator.
* :mod:`repro.parallel` — instrumented parallel Apriori/Eclat and the
  scalability-study harness that regenerates the paper's tables and figures.
* :mod:`repro.obs` — structured tracing (Chrome trace-event sinks for
  Perfetto), metrics registries, and the :class:`ObsContext` every
  pipeline entry point accepts.

Deprecated (still working, forwarding to the engine with a
``DeprecationWarning``): ``run_apriori``, ``run_eclat``,
``repro.backends.mine_serial``, ``repro.backends.eclat_multiprocessing``,
``repro.core.charm.closed_itemsets_via_charm``.
"""

from repro import engine, obs
from repro.core import (
    MiningResult,
    Queryable,
    apriori,
    brute_force,
    charm,
    eclat,
    fpgrowth,
    run_apriori,
    run_eclat,
)
from repro.datasets import TransactionDatabase, get_dataset, read_fimi
from repro.engine import mine
from repro.index import ItemsetIndex
from repro.obs import ObsContext
from repro.representations import get_representation

__version__ = "1.4.0"

__all__ = [
    "MiningResult",
    "Queryable",
    "ItemsetIndex",
    "TransactionDatabase",
    "mine",
    "engine",
    "apriori",
    "eclat",
    "fpgrowth",
    "charm",
    "brute_force",
    "run_apriori",
    "run_eclat",
    "get_dataset",
    "read_fimi",
    "get_representation",
    "obs",
    "ObsContext",
    "__version__",
]
