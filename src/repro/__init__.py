"""repro — reproduction of "Frequent Itemset Mining on Large-Scale Shared
Memory Machines" (Zhang, Zhang & Bakos, IEEE CLUSTER 2011).

Public API highlights:

* :func:`repro.mine` — **the** mining entry point: one call covers every
  algorithm × vertical representation × execution backend combination
  (``serial``, ``multiprocessing``, ``vectorized``) behind the engine's
  registry, with typed errors and ``representation="auto"`` selection.
* :mod:`repro.engine` — the execution engine: backend registry,
  :func:`repro.engine.execute` for full run objects (level tables, cost
  traces), and the NumPy packed-bitvector block kernels.
* :func:`repro.apriori`, :func:`repro.eclat`, :func:`repro.fpgrowth` —
  engine-routed convenience wrappers, each usable with the ``tidset``,
  ``bitvector``, ``bitvector_numpy``, or ``diffset`` representation.
* :mod:`repro.datasets` — FIMI parsing, Quest-style generation, and the
  Table I benchmark surrogates.
* :mod:`repro.machine` / :mod:`repro.openmp` — the Blacklight NUMA model and
  the OpenMP-style schedule simulator.
* :mod:`repro.parallel` — instrumented parallel Apriori/Eclat and the
  scalability-study harness that regenerates the paper's tables and figures.
* :mod:`repro.obs` — structured tracing (Chrome trace-event sinks for
  Perfetto), metrics registries, and the :class:`ObsContext` every
  pipeline entry point accepts.

Deprecated (still working, forwarding to the engine with a
``DeprecationWarning``): ``run_apriori``, ``run_eclat``,
``repro.backends.mine_serial``, ``repro.backends.eclat_multiprocessing``.
"""

from repro import engine, obs
from repro.core import (
    MiningResult,
    apriori,
    brute_force,
    eclat,
    fpgrowth,
    run_apriori,
    run_eclat,
)
from repro.datasets import TransactionDatabase, get_dataset, read_fimi
from repro.engine import mine
from repro.obs import ObsContext
from repro.representations import get_representation

__version__ = "1.1.0"

__all__ = [
    "MiningResult",
    "TransactionDatabase",
    "mine",
    "engine",
    "apriori",
    "eclat",
    "fpgrowth",
    "brute_force",
    "run_apriori",
    "run_eclat",
    "get_dataset",
    "read_fimi",
    "get_representation",
    "obs",
    "ObsContext",
    "__version__",
]
