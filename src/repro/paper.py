"""Canonical configuration of the paper-reproduction experiments.

One place freezes every choice the benchmarks share: which surrogate
dataset each Table I row maps to, which support level each
``dataset@support`` label uses, the thread-count sweep, and the machine
preset.  Benchmarks, examples, and EXPERIMENTS.md all read from here so the
numbers they print agree.

Support levels are a reproduction choice, not a paper value: the paper's
tables are unreadable in the archival copy (the OCR dropped the numeric
columns), so we picked, per surrogate, the level that gives a non-trivial
lattice (thousands of frequent itemsets, depth >= 4) while staying
tractable for a pure-Python miner.  The label format matches the paper
exactly (``chess@0.2`` = chess at 20% relative support).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.registry import get_dataset
from repro.datasets.transaction_db import TransactionDatabase
from repro.machine.blacklight import BLACKLIGHT, MachineSpec
from repro.machine.topology import standard_thread_counts

#: Thread counts the paper sweeps (16 = one blade .. 1024 = 64 blades),
#: plus the 1-thread baseline every speedup is relative to.
THREAD_COUNTS: list[int] = standard_thread_counts(1024)

#: Support level used for each dataset in Tables II-V.
PAPER_SUPPORTS: dict[str, float] = {
    "chess": 0.8,
    "mushroom": 0.4,
    "pumsb": 0.85,
    "pumsb_star": 0.4,
}

#: Machine preset for every paper experiment.
PAPER_MACHINE: MachineSpec = BLACKLIGHT

#: The representations in the order the paper discusses them.
REPRESENTATION_NAMES: tuple[str, ...] = ("tidset", "bitvector", "diffset")


@dataclass(frozen=True)
class ExperimentPoint:
    """One ``dataset@support`` row of a paper table."""

    dataset: str
    min_support: float

    @property
    def label(self) -> str:
        return f"{self.dataset}@{self.min_support:g}"

    def load(self) -> TransactionDatabase:
        return get_dataset(self.dataset)


def paper_rows() -> list[ExperimentPoint]:
    """The four dataset rows every runtime table contains."""
    return [
        ExperimentPoint(name, support) for name, support in PAPER_SUPPORTS.items()
    ]


def quick_rows() -> list[ExperimentPoint]:
    """A cheaper two-row subset for smoke-level runs (chess + mushroom)."""
    return [
        ExperimentPoint("chess", PAPER_SUPPORTS["chess"]),
        ExperimentPoint("mushroom", PAPER_SUPPORTS["mushroom"]),
    ]
