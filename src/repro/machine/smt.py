"""Simultaneous multithreading (hyper-threading) model.

Section V notes: "Each core ... supports two hardware [threads] using
hyper[-threading] ... We did not use hyper-thread as it does not improve
our program performance."  This module makes that claim testable: an SMT
variant of a machine doubles the hardware threads per blade, but the
second context on a core shares its execution pipes (reduced per-thread
element rate) and — decisively for FIM kernels — adds **no** memory or
interconnect bandwidth.  Bandwidth-bound workloads therefore gain nothing
from SMT, which is exactly what the E12 ablation shows.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.machine.blacklight import MachineSpec


def smt_machine(
    spec: MachineSpec,
    ways: int = 2,
    pipeline_efficiency: float = 0.62,
) -> MachineSpec:
    """An SMT-enabled variant of ``spec``.

    Parameters
    ----------
    ways:
        Hardware threads per core (Nehalem-EX: 2).
    pipeline_efficiency:
        Aggregate issue-rate gain per core from running ``ways`` contexts,
        as a fraction of linear (0.62 means two contexts together retire
        1.24 cores' worth of element work — the usual ~20-30% SMT uplift).
        Per-thread compute rate becomes ``efficiency * base``.

    Memory-side constants are left untouched: blade bandwidth, link
    bandwidth, and bisection are physical resources the extra contexts
    share, so per-thread local bandwidth is halved implicitly by the
    doubled ``cores_per_blade``... explicitly here, since the model charges
    bandwidth per thread.
    """
    if ways < 1:
        raise ConfigurationError("ways must be >= 1")
    if not 0.0 < pipeline_efficiency <= 1.0:
        raise ConfigurationError("pipeline_efficiency must be in (0, 1]")
    if ways == 1:
        return spec
    return spec.with_overrides(
        name=f"{spec.name}-smt{ways}",
        cores_per_blade=spec.cores_per_blade * ways,
        element_rate=spec.element_rate * pipeline_efficiency,
        local_bandwidth=spec.local_bandwidth / ways,
        remote_stream_bandwidth=spec.remote_stream_bandwidth / ways,
        # Per-thread caches are split between the contexts.
        cache_per_thread=max(1, spec.cache_per_thread // ways),
    )
