"""Cache-reuse model for parent-payload reads.

Support counting re-reads parent payloads heavily: within a prefix block,
consecutive candidates share their *left* parent, and the block's *right*
parents cycle.  Whether those re-reads hit cache or re-stream from (possibly
remote) memory is the decisive architectural difference between the compact
diffset and the bulky tidset/bitvector formats — cache hits cost nothing on
the interconnect, misses pay full NUMA freight on every access.

The model, applied per parallel region and per thread:

* **left parents** are reused back-to-back, so one resident copy suffices:
  a left payload no larger than the per-thread cache is charged once per
  (thread, parent); larger payloads stream on every read.
* **right parents** cycle through the block, so reuse requires the thread's
  whole distinct right-parent working set to fit; if it does, each parent is
  charged once, otherwise every read streams.

Charged bytes are what actually moves through memory/interconnect; element
compute cost is never discounted (cached data still has to be merged).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError


def first_occurrence_mask(keys: np.ndarray) -> np.ndarray:
    """True at the first occurrence of each distinct key."""
    if keys.ndim != 1:
        raise SimulationError("keys must be 1-D")
    mask = np.zeros(keys.size, dtype=bool)
    if keys.size:
        _, first_idx = np.unique(keys, return_index=True)
        mask[first_idx] = True
    return mask


def charge_left_reads(
    assignment: np.ndarray,
    parent_index: np.ndarray,
    parent_bytes: np.ndarray,
    n_parents: int,
    cache_per_thread: int,
) -> np.ndarray:
    """Bytes actually transferred for each left-parent read.

    One resident left parent is enough (consecutive candidates share it),
    so payloads that fit in cache are charged at the first (thread, parent)
    encounter only.
    """
    keys = assignment.astype(np.int64) * n_parents + parent_index
    first = first_occurrence_mask(keys)
    fits = parent_bytes <= cache_per_thread
    return np.where(fits, np.where(first, parent_bytes, 0), parent_bytes)


def charge_right_reads(
    assignment: np.ndarray,
    parent_index: np.ndarray,
    parent_bytes: np.ndarray,
    n_parents: int,
    n_threads: int,
    cache_per_thread: int,
    written_bytes: np.ndarray | None = None,
) -> np.ndarray:
    """Bytes actually transferred for each right-parent read.

    Right parents cycle, so reuse needs the executor's entire distinct
    right-parent working set resident *alongside the payloads it is
    writing* — freshly produced candidates stream through the same cache
    and evict the parents.  Executors whose (parents + written) footprint
    exceeds the cache stream every read.

    ``assignment`` may be per-thread or per-blade (with the matching cache
    size); ``written_bytes`` is the per-read produced-payload size used for
    the eviction term.
    """
    keys = assignment.astype(np.int64) * n_parents + parent_index
    first = first_occurrence_mask(keys)

    working_set = np.zeros(n_threads, dtype=np.float64)
    if keys.size:
        np.add.at(working_set, assignment[first], parent_bytes[first])
    if written_bytes is not None and keys.size:
        np.add.at(working_set, assignment, written_bytes)
    # Partial reuse: the fraction of repeat reads that still hit is the
    # fraction of the working set the cache can hold (1 when it fits, ~0
    # when the footprint dwarfs the cache).  The smooth ramp avoids
    # knife-edge behaviour at the capacity boundary.
    ws = np.maximum(working_set[assignment], 1.0)
    hit_fraction = np.clip(cache_per_thread / ws, 0.0, 1.0)
    repeat_charge = parent_bytes * (1.0 - hit_fraction)
    return np.where(first, parent_bytes, repeat_charge)
