"""NUMA shared-memory machine model (the Blacklight substitute)."""

from repro.machine.blacklight import BLACKLIGHT, UNIFORM_MEMORY, MachineSpec
from repro.machine.cost_model import CostModel
from repro.machine.memory_model import (
    PlacementMap,
    first_touch_placement,
    interleaved_placement,
    per_blade_link_traffic,
    remote_read_bytes,
)
from repro.machine.smt import smt_machine
from repro.machine.topology import NumaTopology, standard_thread_counts
from repro.machine.analytic import (
    WorkloadSummary,
    amdahl_speedup,
    efficiency_at,
    saturation_threads,
    speedup_upper_bound,
)

__all__ = [
    "MachineSpec",
    "BLACKLIGHT",
    "UNIFORM_MEMORY",
    "CostModel",
    "NumaTopology",
    "standard_thread_counts",
    "smt_machine",
    "WorkloadSummary",
    "amdahl_speedup",
    "speedup_upper_bound",
    "saturation_threads",
    "efficiency_at",
    "PlacementMap",
    "interleaved_placement",
    "first_touch_placement",
    "remote_read_bytes",
    "per_blade_link_traffic",
]
