"""Machine parameterization, with the Blacklight preset.

Every constant the simulator consumes lives in one frozen
:class:`MachineSpec`.  The Blacklight numbers start from published hardware
specs (2.27 GHz Nehalem-EX, 16 cores + 128 GB per blade, NumaLink 5) and the
derived rates are calibrated within hardware-plausible ranges so the *shape*
criteria of DESIGN.md hold; every choice is documented on the field.

Changing a field and re-running the benches is the supported way to explore
"what if the interconnect were twice as fast" questions (see the E8/E9
ablation benches).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MachineSpec:
    """All machine constants the cost model and scheduler simulator use."""

    name: str

    #: Cores per blade; Blacklight blades carry two 8-core Xeon X7560.
    cores_per_blade: int

    #: Sustained representation-kernel element rate per core (elements/s).
    #: A 2.27 GHz Nehalem core running a compiled merge-intersection or
    #: AND+popcount loop retires roughly one element per few cycles.
    element_rate: float

    #: Per-core sustained bandwidth to blade-local memory (B/s).  16 cores
    #: share ~34 GB/s per socket pair on Nehalem-EX; ~2 GB/s each under
    #: full contention.
    local_bandwidth: float

    #: Per-blade NumaLink link bandwidth (B/s), shared by the blade's 16
    #: cores for ALL remote traffic in or out.  NumaLink 5 is ~7.5 GB/s per
    #: direction per link.
    link_bandwidth: float

    #: Sustained per-thread bandwidth when streaming from a remote blade
    #: (B/s).  Far below link bandwidth because a single thread's remote
    #: loads are latency-limited (few outstanding misses x ~1 us round trip).
    remote_stream_bandwidth: float

    #: Round-trip latency charged per remote transfer chunk (s).
    remote_latency: float

    #: Transfer chunk granularity for the latency term (bytes).  Remote
    #: candidate payloads are fetched in page-sized units.
    remote_chunk_bytes: int

    #: Fork/join overhead of one OpenMP parallel region: ``a + b*log2(T)``
    #: seconds (tree barrier).
    fork_join_base: float
    fork_join_per_log2_thread: float

    #: Serialized cost of one dynamic-schedule dequeue (the shared queue
    #: lock), seconds.
    dynamic_dequeue_cost: float

    #: Element rate of serial phases (candidate generation / pruning runs
    #: on one thread between parallel regions), elements/s.
    serial_op_rate: float

    #: Effective per-thread cache capacity (bytes).  Parent payloads whose
    #: per-thread working set fits here are fetched from (possibly remote)
    #: memory once per thread and hit cache on reuse; larger working sets
    #: stream every access.  Nehalem-EX: 256 KB private L2 (the shared L3
    #: is discounted — 16 streaming threads thrash it).
    cache_per_thread: int = 256 * 1024

    #: Shared last-level cache per blade (bytes).  Parent payloads whose
    #: per-blade working set fits are fetched across the interconnect once
    #: per blade rather than once per thread — Nehalem-EX blades carry
    #: 2 x 24 MB of L3.
    cache_per_blade: int = 48 * 1024 * 1024

    #: Aggregate interconnect throughput (B/s) for fine-grained remote
    #: reads across the whole partition.  The NumaLink 5 fat tree's nominal
    #: bisection is high, but candidate-payload reads are scattered 4 KB
    #: transfers with directory lookups, which sustain far less; this cap is
    #: what ultimately pins the bulky representations: a parallel region
    #: cannot finish before ``total_remote_bytes / bisection_bandwidth``.
    bisection_bandwidth: float = 8e9

    #: Fixed bookkeeping element-ops per loop iteration (candidate): trie /
    #: level-table update, allocation, support store, pruning hash insert.
    #: Independent of payload size — this is why the compact diffset's
    #: runtime is not simply proportional to its (much smaller) traffic.
    iteration_overhead_ops: int = 2000

    #: Fixed cost of one successful steal event (s): the thief's CAS on the
    #: victim deque's bottom pointer plus the cache-line ping-pong between
    #: the two cores' private caches.  Charged once per steal event; the
    #: stolen payload itself is priced separately as remote traffic
    #: (:meth:`repro.machine.cost_model.CostModel.steal_time`).  A locked
    #: cross-blade CAS on Nehalem-EX/NumaLink costs on the order of a
    #: remote round trip.
    steal_attempt_cost: float = 2.0e-6

    #: Sustained sequential file-read bandwidth (B/s) — the rate an
    #: out-of-core pass streams a ``.dat`` file off storage.  Blacklight's
    #: Lustre scratch sustained ~500 MB/s for a single-client sequential
    #: read, which also matches a modern single SATA-SSD stream, so the
    #: preset transfers.  Priced by
    #: :meth:`repro.machine.cost_model.CostModel.io_time` and swept over
    #: partition counts by :mod:`repro.outofcore.planner`.
    io_bytes_per_sec: float = 5.0e8

    def __post_init__(self) -> None:
        numeric = {
            "element_rate": self.element_rate,
            "local_bandwidth": self.local_bandwidth,
            "link_bandwidth": self.link_bandwidth,
            "remote_stream_bandwidth": self.remote_stream_bandwidth,
            "serial_op_rate": self.serial_op_rate,
            "bisection_bandwidth": self.bisection_bandwidth,
            "io_bytes_per_sec": self.io_bytes_per_sec,
        }
        for field_name, value in numeric.items():
            if value <= 0:
                raise ConfigurationError(f"{field_name} must be positive")
        if self.cores_per_blade < 1:
            raise ConfigurationError("cores_per_blade must be >= 1")
        if self.remote_chunk_bytes < 1:
            raise ConfigurationError("remote_chunk_bytes must be >= 1")
        for field_name, value in {
            "remote_latency": self.remote_latency,
            "fork_join_base": self.fork_join_base,
            "fork_join_per_log2_thread": self.fork_join_per_log2_thread,
            "dynamic_dequeue_cost": self.dynamic_dequeue_cost,
            "steal_attempt_cost": self.steal_attempt_cost,
        }.items():
            if value < 0:
                raise ConfigurationError(f"{field_name} must be >= 0")

    def with_overrides(self, **kwargs) -> "MachineSpec":
        """A copy with some fields replaced (ablation helper)."""
        return replace(self, **kwargs)


#: The Blacklight preset used by every paper-reproduction bench.
BLACKLIGHT = MachineSpec(
    name="blacklight",
    cores_per_blade=16,
    element_rate=6.0e8,
    local_bandwidth=2.0e9,
    link_bandwidth=7.5e9,
    remote_stream_bandwidth=3.0e8,
    remote_latency=1.2e-6,
    remote_chunk_bytes=4096,
    fork_join_base=4.0e-6,
    fork_join_per_log2_thread=1.5e-6,
    dynamic_dequeue_cost=0.4e-6,
    serial_op_rate=4.0e8,
)


#: An idealized UMA machine (no remote penalty) — isolates the NUMA effects
#: in ablation benches: any scalability gap between this and BLACKLIGHT is
#: interconnect-induced by construction.
UNIFORM_MEMORY = BLACKLIGHT.with_overrides(
    name="uniform-memory",
    remote_stream_bandwidth=BLACKLIGHT.local_bandwidth,
    remote_latency=0.0,
    link_bandwidth=1e15,
    bisection_bandwidth=1e15,
)
