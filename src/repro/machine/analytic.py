"""Closed-form scalability bounds — the simulator's sanity envelope.

Given a workload summary (total parallel work, serial work, remote bytes,
task-count limit), classical laws bound what any schedule can achieve:

* Amdahl: ``S(T) <= (w_s + w_p) / (w_s + w_p / T)``;
* task-count: ``S(T) <= min(T, n_tasks) * (1 + imbalance)^-1`` — no
  schedule beats the largest-task critical path;
* interconnect: time >= remote bytes / bisection bandwidth.

The test suite checks that the event-level simulator never reports a
speedup above these bounds (a strong internal-consistency property), and
the examples use the bounds to annotate where each curve *must* flatten.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.machine.blacklight import BLACKLIGHT, MachineSpec


@dataclass(frozen=True)
class WorkloadSummary:
    """The aggregates the analytic bounds need."""

    #: Perfectly parallelizable work, in seconds at one thread.
    parallel_seconds: float
    #: Serial work (load, candidate generation), in seconds.
    serial_seconds: float
    #: Bytes that must cross the interconnect at full machine width.
    remote_bytes: float = 0.0
    #: Number of independent tasks (caps usable threads); None = unbounded.
    n_tasks: int | None = None
    #: Largest single task, in seconds (critical path floor).
    max_task_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.parallel_seconds < 0 or self.serial_seconds < 0:
            raise ConfigurationError("work terms must be non-negative")
        if self.max_task_seconds > self.parallel_seconds + 1e-12:
            raise ConfigurationError(
                "max task cannot exceed the total parallel work"
            )


def amdahl_speedup(summary: WorkloadSummary, n_threads: int) -> float:
    """Amdahl's law for the serial/parallel split."""
    if n_threads < 1:
        raise ConfigurationError("n_threads must be >= 1")
    total = summary.serial_seconds + summary.parallel_seconds
    if total == 0:
        return 1.0
    floor = summary.serial_seconds + summary.parallel_seconds / n_threads
    return total / floor if floor > 0 else float("inf")


def speedup_upper_bound(
    summary: WorkloadSummary,
    n_threads: int,
    machine: MachineSpec = BLACKLIGHT,
) -> float:
    """The tightest of the classical upper bounds at ``n_threads``.

    Composes Amdahl with the critical-path floor (largest task), the
    task-count cap, and the bisection floor for the remote traffic.
    """
    total = summary.serial_seconds + summary.parallel_seconds
    if total == 0:
        return 1.0
    effective_threads = n_threads
    if summary.n_tasks is not None:
        effective_threads = min(n_threads, max(summary.n_tasks, 1))
    time_floor = summary.serial_seconds + max(
        summary.parallel_seconds / effective_threads,
        summary.max_task_seconds,
        (summary.remote_bytes / machine.bisection_bandwidth)
        if n_threads > machine.cores_per_blade
        else 0.0,
    )
    return total / time_floor if time_floor > 0 else float("inf")


def saturation_threads(summary: WorkloadSummary) -> float:
    """Thread count beyond which Amdahl alone halts meaningful gains.

    Defined as the T where the parallel share drops to the serial share
    (the knee of the Amdahl curve); infinite for a fully parallel load.
    """
    if summary.serial_seconds == 0:
        return float("inf")
    return summary.parallel_seconds / summary.serial_seconds


def efficiency_at(summary: WorkloadSummary, n_threads: int,
                  machine: MachineSpec = BLACKLIGHT) -> float:
    """Upper-bound parallel efficiency at ``n_threads``."""
    return speedup_upper_bound(summary, n_threads, machine) / n_threads
