"""Translate measured operation counts into simulated seconds.

Per-task time on a core is composed of three sequential phases (the kernels
are streaming loops, so compute and memory phases overlap poorly for the
set-merge representations):

* compute: ``cpu_ops / element_rate``;
* local traffic: ``(local_read + written) / local_bandwidth`` — written
  payloads are always first-touched locally;
* remote traffic: latency per chunk plus the bytes at the per-thread remote
  stream rate.

The aggregate interconnect constraint (a blade link cannot move more than
``link_bandwidth`` bytes per second, no matter how many threads want it) is
applied by the scheduler simulator, which knows the task-to-blade
assignment; this module only prices individual tasks and serial phases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.blacklight import BLACKLIGHT, MachineSpec


@dataclass(frozen=True)
class CostModel:
    """Vectorized pricing of tasks on a given machine."""

    spec: MachineSpec = BLACKLIGHT

    def compute_time(self, cpu_ops: np.ndarray | float) -> np.ndarray | float:
        """Seconds of pure element processing."""
        return np.asarray(cpu_ops, dtype=np.float64) / self.spec.element_rate

    def local_time(self, local_bytes: np.ndarray | float) -> np.ndarray | float:
        """Seconds to move bytes through blade-local memory."""
        return np.asarray(local_bytes, dtype=np.float64) / self.spec.local_bandwidth

    def remote_time(self, remote_bytes: np.ndarray | float) -> np.ndarray | float:
        """Seconds for one thread to pull bytes from a remote blade.

        Zero bytes cost zero (no gratuitous latency charge); otherwise each
        started chunk pays the round-trip latency and the payload streams at
        the per-thread remote rate.
        """
        b = np.asarray(remote_bytes, dtype=np.float64)
        chunks = np.ceil(b / self.spec.remote_chunk_bytes)
        time = chunks * self.spec.remote_latency + b / self.spec.remote_stream_bandwidth
        return np.where(b > 0, time, 0.0)

    def task_time(
        self,
        cpu_ops: np.ndarray | float,
        local_bytes: np.ndarray | float,
        remote_bytes: np.ndarray | float,
    ) -> np.ndarray:
        """Total per-task seconds as seen by the executing thread."""
        return np.asarray(
            self.compute_time(cpu_ops)
            + self.local_time(local_bytes)
            + self.remote_time(remote_bytes),
            dtype=np.float64,
        )

    def steal_time(self, payload_bytes: np.ndarray | float) -> np.ndarray | float:
        """Seconds one steal event costs the thief.

        The fixed deque-CAS/cache-line term plus the stolen task's payload
        priced as remote NumaLink reads — the stolen class's rows live in
        memory first-touched by the victim's blade, so the thief streams
        them across the interconnect exactly like a remote candidate fetch.
        """
        return self.spec.steal_attempt_cost + self.remote_time(payload_bytes)

    def serial_time(self, ops: float) -> float:
        """Seconds of a serial (single-thread, local-data) phase."""
        return float(ops) / self.spec.serial_op_rate

    def fork_join_time(self, n_threads: int) -> float:
        """Cost of opening + closing one parallel region with T threads."""
        if n_threads <= 1:
            return 0.0
        return (
            self.spec.fork_join_base
            + self.spec.fork_join_per_log2_thread * float(np.log2(n_threads))
        )

    def link_serialization_time(
        self, per_blade_traffic_bytes: np.ndarray
    ) -> float:
        """Lower bound from the busiest blade link."""
        if per_blade_traffic_bytes.size == 0:
            return 0.0
        return float(per_blade_traffic_bytes.max()) / self.spec.link_bandwidth

    def bisection_time(self, total_remote_bytes: float) -> float:
        """Lower bound from aggregate interconnect throughput."""
        return float(total_remote_bytes) / self.spec.bisection_bandwidth

    def iteration_overhead_time(self, n_iterations: int = 1) -> float:
        """Per-iteration bookkeeping cost (payload-independent)."""
        return self.spec.iteration_overhead_ops * n_iterations / self.spec.element_rate

    def io_time(self, file_bytes: np.ndarray | float) -> np.ndarray | float:
        """Seconds to stream bytes sequentially off storage.

        The out-of-core SON driver reads the dataset file twice (partition
        mining, then global candidate counting); each pass is priced at the
        machine's sustained sequential read rate.  Partition count does not
        change this term — every partitioning reads the same bytes — which
        is why the partition sweep's I/O floor is flat.
        """
        return (
            np.asarray(file_bytes, dtype=np.float64) / self.spec.io_bytes_per_sec
        )


def predicted_breakdown(
    counters: "dict[str, float] | None",
    gauges: "dict[str, float] | None" = None,
    spec: MachineSpec = BLACKLIGHT,
) -> dict[str, float]:
    """Cost-model per-bucket seconds predicted from a run's counters.

    The run-anatomy layer measures where wall clock *went*
    (compute / steal / ipc / io); this predicts the same split from the
    counted work, so ``repro obs explain`` can show predicted-vs-actual
    per phase.  The mapping is deliberately coarse — each term reuses the
    pricing primitive that the simulator charges for the same work:

    * **compute** — kernel bytes (``mine.intersection_read_bytes`` as
      byte-granular element ops) plus local traffic for reads + writes;
    * **steal** — one ``steal_attempt_cost`` per recorded steal plus the
      rebuild payload priced as remote traffic
      (``worksteal.rebuild.read_bytes``);
    * **ipc** — fork/join for the recorded worker count plus per-snapshot
      iteration overhead;
    * **io** — ``outofcore.read_bytes`` at the sequential streaming rate.
    """
    counters = counters or {}
    gauges = gauges or {}
    model = CostModel(spec)

    read = float(counters.get("mine.intersection_read_bytes", 0.0))
    written = float(counters.get("mine.bytes_written", 0.0))
    compute = float(model.compute_time(read)) + float(
        model.local_time(read + written)
    )

    rebuild_bytes = float(counters.get("worksteal.rebuild.read_bytes", 0.0))
    steals = sum(
        value for name, value in counters.items() if name.endswith(".steals")
    )
    steal = float(steals) * spec.steal_attempt_cost + float(
        model.remote_time(rebuild_bytes)
    )

    n_workers = max(
        (value for name, value in gauges.items()
         if name.endswith(".n_workers")),
        default=0.0,
    )
    snapshots = float(counters.get("obs.snapshots.merged", 0.0))
    ipc = model.fork_join_time(int(n_workers)) + model.iteration_overhead_time(
        int(snapshots)
    )

    io = float(model.io_time(float(counters.get("outofcore.read_bytes", 0.0))))
    return {"compute": compute, "steal": steal, "ipc": ipc, "io": io}


def record_region_attribution(
    obs,
    label: str,
    *,
    makespan: float,
    link_bound: float,
    fork_join: float,
    serial: float = 0.0,
    per_blade_link_bytes: np.ndarray | None = None,
    remote_bytes: float = 0.0,
    thread_busy: np.ndarray | None = None,
) -> None:
    """Record one simulated region's bottleneck split into an ObsContext.

    This is the pricing model's side of the paper's mechanistic claim:
    ``link_bound > makespan`` means the region paced on the NumaLink, not
    on compute — the condition behind Fig. 5's non-scaling curves.  Writes

    * ``region.{label}.makespan_s`` / ``.link_bound_s`` gauges,
    * ``region.{label}.link_limited`` (1.0 when the interconnect won),
    * ``numalink.region.{label}.bytes`` (remote bytes the region moved)
      and per-blade ``numalink.blade{b}.bytes`` accumulators,
    * ``sim.fork_join_s`` / ``sim.serial_s`` totals,
    * ``sim.thread_busy_s`` histogram + ``region.{label}.imbalance``.

    ``obs`` is an :class:`repro.obs.ObsContext` or ``None`` (no-op).
    """
    if obs is None:
        return
    metrics = obs.metrics
    metrics.gauge(f"region.{label}.makespan_s").set(makespan)
    metrics.gauge(f"region.{label}.link_bound_s").set(link_bound)
    metrics.gauge(f"region.{label}.link_limited").set(
        1.0 if link_bound > makespan else 0.0
    )
    metrics.counter("sim.fork_join_s").inc(fork_join)
    if serial:
        metrics.counter("sim.serial_s").inc(serial)
    metrics.counter(f"numalink.region.{label}.bytes").inc(float(remote_bytes))
    if per_blade_link_bytes is not None:
        for blade, traffic in enumerate(np.asarray(per_blade_link_bytes)):
            if traffic:
                metrics.counter(f"numalink.blade{blade}.bytes").inc(float(traffic))
    if thread_busy is not None:
        busy = np.asarray(thread_busy, dtype=np.float64)
        metrics.histogram("sim.thread_busy_s").observe_many(busy)
        mean = busy.mean() if busy.size else 0.0
        metrics.gauge(f"region.{label}.imbalance").set(
            float(busy.max() / mean - 1.0) if mean else 0.0
        )
