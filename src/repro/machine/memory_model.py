"""First-touch page placement tracking.

On a NUMA Linux/SGI system, a page is physically allocated on the blade of
the first thread that writes it.  For the miners this means a candidate's
vertical payload lives wherever its support-counting task ran, and the
next generation's tasks pay remote-access costs whenever they read a parent
that was first-touched on another blade.  :class:`PlacementMap` records the
home blade of every candidate in a generation; :func:`interleaved_placement`
models the shared base data (loaded serially, pages striped round-robin).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.machine.topology import NumaTopology


@dataclass(frozen=True)
class PlacementMap:
    """Home blade of each candidate payload in one generation."""

    home_blades: np.ndarray  # int64, one entry per candidate

    def __post_init__(self) -> None:
        if self.home_blades.ndim != 1:
            raise SimulationError("home_blades must be one-dimensional")

    def __len__(self) -> int:
        return int(self.home_blades.size)

    def homes_of(self, indices: np.ndarray) -> np.ndarray:
        """Home blades of the given candidate indices."""
        return self.home_blades[indices]

    def select(self, keep_mask: np.ndarray) -> "PlacementMap":
        """Placement of the surviving candidates only (post-pruning view)."""
        return PlacementMap(self.home_blades[keep_mask])


def interleaved_placement(n_entries: int, topology: NumaTopology) -> PlacementMap:
    """Round-robin home blades for serially-initialized shared data."""
    homes = np.arange(n_entries, dtype=np.int64) % topology.n_blades
    return PlacementMap(homes)


def first_touch_placement(
    iteration_thread: np.ndarray, topology: NumaTopology
) -> PlacementMap:
    """Home blade of each candidate = blade of the thread that computed it."""
    threads = np.asarray(iteration_thread, dtype=np.int64)
    if threads.size and (threads.min() < 0 or threads.max() >= topology.n_threads):
        raise SimulationError(
            "iteration_thread contains ids outside the team "
            f"[0, {topology.n_threads})"
        )
    return PlacementMap(np.asarray(topology.blade_of_thread(threads), np.int64))


def remote_read_bytes(
    reader_blades: np.ndarray,
    parent_homes: np.ndarray,
    parent_bytes: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Split each read into (local_bytes, remote_bytes) by blade match."""
    remote_mask = reader_blades != parent_homes
    remote = np.where(remote_mask, parent_bytes, 0)
    local = np.where(remote_mask, 0, parent_bytes)
    return local, remote


def per_blade_link_traffic(
    reader_blades: np.ndarray,
    parent_homes: np.ndarray,
    parent_bytes: np.ndarray,
    n_blades: int,
) -> np.ndarray:
    """Total bytes crossing each blade's link (in + out), per blade.

    A remote read of B bytes loads both the reader's link (inbound) and the
    home blade's link (outbound); local reads load neither.  The scheduler
    simulator takes ``max(traffic / link_bandwidth)`` over blades as the
    interconnect-serialization lower bound — this is the hot-spot effect
    that throttles Apriori when one blade homes the popular parents.
    """
    remote_mask = reader_blades != parent_homes
    traffic = np.zeros(n_blades, dtype=np.float64)
    if remote_mask.any():
        np.add.at(traffic, parent_homes[remote_mask], parent_bytes[remote_mask])
        np.add.at(traffic, reader_blades[remote_mask], parent_bytes[remote_mask])
    return traffic
