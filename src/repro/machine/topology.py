"""NUMA topology model: blades, cores, and thread-to-blade mapping.

Blacklight (the paper's testbed, Section V) is an SGI Altix UV 1000: 256
blades, each holding two 8-core Nehalem-EX sockets (16 cores) and 128 GB of
blade-local memory, joined by a NumaLink 5 interconnect.  Threads are pinned
in blade order — the paper scales "16 processors (one blade) to 1024
processors (64 blades)" — so thread ``t`` runs on blade ``t // 16``.

Only the properties the cost model consumes are represented: how many
blades a team spans, which blade a thread (and therefore its first-touch
pages) belongs to, and how many cores share each blade's interconnect link.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class NumaTopology:
    """A team of threads laid out across NUMA blades."""

    n_threads: int
    cores_per_blade: int = 16

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise ConfigurationError("n_threads must be >= 1")
        if self.cores_per_blade < 1:
            raise ConfigurationError("cores_per_blade must be >= 1")

    @property
    def n_blades(self) -> int:
        """Blades spanned by the team (partially filled blades count)."""
        return -(-self.n_threads // self.cores_per_blade)

    def blade_of_thread(self, thread: int | np.ndarray) -> int | np.ndarray:
        """Blade hosting ``thread`` (vectorized over arrays)."""
        return thread // self.cores_per_blade

    def threads_on_blade(self, blade: int) -> int:
        """How many of the team's threads live on ``blade``."""
        if blade < 0 or blade >= self.n_blades:
            raise ConfigurationError(
                f"blade {blade} out of range for {self.n_blades} blades"
            )
        start = blade * self.cores_per_blade
        return max(0, min(self.n_threads - start, self.cores_per_blade))

    def interleaved_home(self, index: int | np.ndarray) -> int | np.ndarray:
        """Home blade of page ``index`` under round-robin interleaving.

        Shared base data (the generation-1 verticals) is modelled as
        page-interleaved across the team's blades, the usual allocation
        policy for data initialized by a serial loader on a big SMP.
        """
        return index % self.n_blades

    def is_single_blade(self) -> bool:
        """True when all threads share one blade (zero NUMA traffic)."""
        return self.n_blades == 1


def standard_thread_counts(max_threads: int = 1024) -> list[int]:
    """The paper's sweep: 1 (baseline) then one to 64 blades doubling."""
    counts = [1]
    t = 16
    while t <= max_threads:
        counts.append(t)
        t *= 2
    return counts
