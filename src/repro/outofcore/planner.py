"""Partition planning and cost prediction for out-of-core SON mining.

Two questions are answered here, both from a :class:`StreamStats` scan and
without loading the database:

1. **How many partitions does a memory budget force?**
   :func:`plan_partitions` estimates the peak in-memory footprint of one
   partition (horizontal chunk + packed bit matrix + vertical tidlists —
   the three co-resident structures a phase-1 mine touches) and picks the
   smallest partition count whose chunks fit ``max_memory_bytes``.  Fewer
   partitions is always better when memory allows (see below), so the
   smallest feasible count *is* the plan.

2. **What will a given partition count cost?**
   :func:`predict_partition_seconds` prices the SON two-phase dataflow on a
   :class:`~repro.machine.cost_model.CostModel`: two sequential file passes
   (the new ``io_time`` term — flat in the partition count, every
   partitioning reads the same bytes), parsing, the mining work itself, a
   per-partition setup term (each chunk packs its own bit matrix and pays
   fixed bookkeeping), and a phase-2 counting term that **grows** with the
   partition count because smaller partitions mean lower local thresholds
   and therefore more false-positive candidates to count globally.
   :func:`sweep_partition_counts` evaluates a whole sweep; together with
   :func:`plan_partitions` it predicts the sweet spot that
   ``scripts/bench_outofcore.py`` then measures: *total time rises
   monotonically past the smallest feasible partition count*, so the
   predicted optimum is ``plan_partitions(...).n_partitions``.

The constants here are first-order: they rank partition counts and expose
the I/O floor, they do not promise wall-clock accuracy on any particular
disk.  Each is documented with its provenance so ablations can move them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.datasets.streaming import StreamStats, partition_chunk_size
from repro.errors import ConfigurationError
from repro.machine.cost_model import CostModel
from repro.representations.bitvector_numpy import bytes_for

#: Python/numpy fixed overhead per transaction held in a chunk: one small
#: ``ndarray`` (~112 bytes of header) plus its list slot.
PER_TRANSACTION_OVERHEAD_BYTES = 120

#: Bytes per item occurrence across the co-resident structures of one
#: partition: 4 (int32 horizontal) + 8 (int64 tidlist the vertical
#: builders materialize).
PER_TOKEN_BYTES = 12

#: Serial ops charged per parsed token (int conversion + append); the
#: parse term uses the machine's ``serial_op_rate``.
PARSE_OPS_PER_TOKEN = 8

#: Element ops charged per token for the phase-1 mine itself.  Eclat-style
#: miners touch each occurrence a handful of times across the prefix tree;
#: this calibrates the mining term's order of magnitude only.
MINING_OPS_PER_TOKEN = 32

#: Relative growth in the global candidate set per additional partition.
#: Lower local thresholds admit more locally-frequent-only itemsets; ~2%
#: extra candidates per partition matches what the Quest surrogates show
#: in ``BENCH_outofcore.json`` and keeps the counting term visibly
#: increasing in the sweep.
CANDIDATE_BLOWUP_PER_PARTITION = 0.02

#: Default chunk size when neither a budget nor a partition count is
#: given: a multiple of the 64-bit packing block that keeps a chunk's
#: packed matrix small on every surrogate.
DEFAULT_CHUNK_TRANSACTIONS = 65536


@dataclass(frozen=True)
class PartitionPlan:
    """The resolved partitioning of one out-of-core run."""

    n_partitions: int
    chunk_transactions: int
    estimated_chunk_bytes: int
    n_transactions: int
    max_memory_bytes: int | None = None


def estimate_chunk_bytes(stats: StreamStats, chunk_transactions: int) -> int:
    """Estimated peak bytes while one chunk of the file is being mined.

    Sums the horizontal chunk (item payload + per-transaction overhead),
    the packed ``n_items x bytes_for(chunk)`` bit matrix, and the vertical
    tidlists — all three coexist at the peak of a phase-1 mine.  The
    estimate is deliberately conservative (structures priced as fully
    co-resident); the bench's measured-RSS check keeps it honest.
    """
    chunk = max(0, min(chunk_transactions, stats.n_transactions))
    tokens = stats.avg_length * chunk
    horizontal = tokens * PER_TOKEN_BYTES + chunk * PER_TRANSACTION_OVERHEAD_BYTES
    packed = stats.n_items * bytes_for(chunk)
    return int(math.ceil(horizontal + packed))


def plan_partitions(
    stats: StreamStats,
    *,
    max_memory_bytes: int | None = None,
    n_partitions: int | None = None,
) -> PartitionPlan:
    """Resolve how many partitions an out-of-core run should use.

    An explicit ``n_partitions`` wins.  Otherwise a ``max_memory_bytes``
    budget picks the smallest partition count whose estimated chunk
    footprint fits (binary search — the footprint is monotone in chunk
    size), raising :class:`ConfigurationError` when even one-transaction
    chunks overflow the budget.  With neither constraint, chunks default
    to :data:`DEFAULT_CHUNK_TRANSACTIONS` transactions.
    """
    n = stats.n_transactions
    if n_partitions is not None:
        if n_partitions < 1:
            raise ConfigurationError(
                f"n_partitions must be >= 1, got {n_partitions}"
            )
        chunk = partition_chunk_size(n, n_partitions)
        return PartitionPlan(
            n_partitions=min(n_partitions, max(n, 1)),
            chunk_transactions=chunk,
            estimated_chunk_bytes=estimate_chunk_bytes(stats, chunk),
            n_transactions=n,
            max_memory_bytes=max_memory_bytes,
        )
    if max_memory_bytes is None:
        chunk = min(DEFAULT_CHUNK_TRANSACTIONS, max(n, 1))
        return PartitionPlan(
            n_partitions=-(-n // chunk) if n else 1,
            chunk_transactions=chunk,
            estimated_chunk_bytes=estimate_chunk_bytes(stats, chunk),
            n_transactions=n,
        )
    if max_memory_bytes < 1:
        raise ConfigurationError(
            f"max_memory_bytes must be >= 1, got {max_memory_bytes}"
        )
    if n == 0:
        return PartitionPlan(
            n_partitions=1, chunk_transactions=1, estimated_chunk_bytes=0,
            n_transactions=0, max_memory_bytes=max_memory_bytes,
        )
    if estimate_chunk_bytes(stats, 1) > max_memory_bytes:
        raise ConfigurationError(
            f"max_memory_bytes={max_memory_bytes} is below the estimated "
            f"footprint of a single-transaction chunk "
            f"({estimate_chunk_bytes(stats, 1)} bytes) for {stats.path}"
        )
    lo, hi = 1, n  # smallest feasible partition count in [lo, hi]
    while lo < hi:
        mid = (lo + hi) // 2
        if estimate_chunk_bytes(
            stats, partition_chunk_size(n, mid)
        ) <= max_memory_bytes:
            hi = mid
        else:
            lo = mid + 1
    chunk = partition_chunk_size(n, lo)
    return PartitionPlan(
        n_partitions=lo,
        chunk_transactions=chunk,
        estimated_chunk_bytes=estimate_chunk_bytes(stats, chunk),
        n_transactions=n,
        max_memory_bytes=max_memory_bytes,
    )


def predict_partition_seconds(
    stats: StreamStats,
    n_partitions: int,
    *,
    model: CostModel | None = None,
    expected_candidates: int | None = None,
) -> dict[str, float]:
    """Predicted SON two-phase seconds at one partition count, by phase.

    Returns a breakdown dict (``io_seconds``, ``parse_seconds``,
    ``mine_seconds``, ``setup_seconds``, ``count_seconds``,
    ``total_seconds``).  Only ``setup_seconds`` and ``count_seconds``
    depend on the partition count, so the predicted curve is an I/O +
    mining floor plus a monotone partition penalty — which is exactly the
    claim the measured sweep in ``scripts/bench_outofcore.py`` tests.
    """
    if n_partitions < 1:
        raise ConfigurationError(
            f"n_partitions must be >= 1, got {n_partitions}"
        )
    model = model or CostModel()
    n = stats.n_transactions
    chunk = partition_chunk_size(n, n_partitions)
    parts = -(-n // chunk) if n else 1
    candidates = float(expected_candidates
                       if expected_candidates is not None else stats.n_items)

    io_seconds = 2.0 * float(model.io_time(stats.file_bytes))
    parse_seconds = 2.0 * model.serial_time(
        stats.total_items * PARSE_OPS_PER_TOKEN
    )
    mine_seconds = float(model.compute_time(
        stats.total_items * MINING_OPS_PER_TOKEN
    ))
    # Each partition packs its own bit matrix (local traffic) and pays the
    # per-region bookkeeping once.
    pack_bytes_per_part = stats.n_items * bytes_for(chunk)
    setup_seconds = parts * (
        float(model.local_time(pack_bytes_per_part))
        + model.iteration_overhead_time(stats.n_items)
    )
    # Phase 2 ANDs + popcounts every candidate against every packed chunk:
    # ~n/8 bytes per candidate across the whole file, inflated by the
    # false-positive blowup that lower local thresholds admit.
    blowup = 1.0 + CANDIDATE_BLOWUP_PER_PARTITION * (parts - 1)
    count_bytes = candidates * blowup * bytes_for(max(n, 1))
    count_seconds = float(model.compute_time(count_bytes)) + float(
        model.local_time(count_bytes)
    )
    total = io_seconds + parse_seconds + mine_seconds + setup_seconds + count_seconds
    return {
        "n_partitions": float(parts),
        "chunk_transactions": float(chunk),
        "io_seconds": io_seconds,
        "parse_seconds": parse_seconds,
        "mine_seconds": mine_seconds,
        "setup_seconds": setup_seconds,
        "count_seconds": count_seconds,
        "total_seconds": total,
    }


def sweep_partition_counts(
    stats: StreamStats,
    partition_counts: Sequence[int],
    *,
    model: CostModel | None = None,
    expected_candidates: int | None = None,
) -> list[dict[str, float]]:
    """Predicted breakdowns across a partition-count sweep (the simulator
    side of the E15 experiment)."""
    return [
        predict_partition_seconds(
            stats, p, model=model, expected_candidates=expected_candidates
        )
        for p in partition_counts
    ]


def predicted_sweet_spot(
    stats: StreamStats,
    partition_counts: Sequence[int],
    *,
    max_memory_bytes: int | None = None,
    model: CostModel | None = None,
    expected_candidates: int | None = None,
) -> int:
    """The partition count the model predicts fastest, honoring the budget.

    Infeasible counts (estimated chunk footprint above the budget) are
    excluded; among feasible ones the smallest predicted total wins.
    Raises :class:`ConfigurationError` when nothing in the sweep fits.
    """
    feasible = []
    for p in partition_counts:
        chunk = partition_chunk_size(stats.n_transactions, p)
        if (
            max_memory_bytes is not None
            and estimate_chunk_bytes(stats, chunk) > max_memory_bytes
        ):
            continue
        feasible.append(p)
    if not feasible:
        raise ConfigurationError(
            f"no partition count in {list(partition_counts)} fits "
            f"max_memory_bytes={max_memory_bytes}"
        )
    sweep = sweep_partition_counts(
        stats, feasible, model=model, expected_candidates=expected_candidates
    )
    best = min(sweep, key=lambda row: row["total_seconds"])
    return int(best["n_partitions"])
