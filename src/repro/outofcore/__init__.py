"""Out-of-core mining: SON two-phase partitioned mining over streamed data.

The in-memory stack (``repro.mine``) assumes the vertical database fits in
RAM; this package removes that assumption.  :func:`mine_out_of_core`
streams a FIMI file in bounded-memory partitions, mines each with any
registered (backend, algorithm) at a scaled threshold, and re-streams the
file to count the candidate union exactly — results are bit-identical to
the in-memory path.  :mod:`repro.outofcore.planner` turns a memory budget
into a partition count and prices partition-count sweeps on the machine
cost model (the ``io_bytes_per_sec`` term).

The usual entry point is the facade: ``repro.mine(db_path=...,
max_memory_bytes=...)`` or the CLI's ``repro mine FILE --out-of-core``.
"""

from repro.outofcore.planner import (
    PartitionPlan,
    estimate_chunk_bytes,
    plan_partitions,
    predict_partition_seconds,
    predicted_sweet_spot,
    sweep_partition_counts,
)
from repro.outofcore.son import (
    count_candidate_supports,
    local_min_support,
    mine_out_of_core,
    union_candidates,
)

__all__ = [
    "PartitionPlan",
    "estimate_chunk_bytes",
    "plan_partitions",
    "predict_partition_seconds",
    "predicted_sweet_spot",
    "sweep_partition_counts",
    "count_candidate_supports",
    "local_min_support",
    "mine_out_of_core",
    "union_candidates",
]
