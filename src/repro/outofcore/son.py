"""SON two-phase partitioned mining over the streaming reader.

The classic Savasere–Omiecinski–Navathe argument, run on top of the
existing engine:

* **Phase 1 (partition mining).**  Stream the FIMI file as bounded-memory
  :class:`TransactionDatabase` chunks.  Partition *i* with ``n_i`` of the
  ``N`` transactions is mined by any registered (backend, algorithm) pair
  at the scaled local threshold ``ceil(s * n_i / N)``.  If an itemset
  misses that threshold in *every* partition its global count is at most
  ``sum_i (ceil(s * n_i / N) - 1) < sum_i s * n_i / N = s``, so the union
  of the local results is a **superset** of every globally frequent
  itemset — no false negatives, only false positives.
* **Phase 2 (global counting).**  Re-stream the file and count exactly the
  candidate supports, vectorized: each chunk is packed once into the
  ``n_items x bytes`` bit matrix and every candidate's support over the
  chunk is one gather + ``bitwise_and.reduce`` + table-lookup popcount
  (:mod:`repro.representations.bitvector_numpy`).  Summing the int64
  per-chunk counts gives exact global supports, and filtering at ``s``
  yields results **bit-identical** to in-memory :func:`repro.mine` — the
  property test in ``tests/test_outofcore.py`` pins this across random
  databases, thresholds, and partition counts.

Peak memory is one chunk plus the candidate table; the file is read twice
and never held.  Observability matches the in-memory path: one ledger
record (``kind="mine-out-of-core"``, dataset fingerprinted by the scan's
sha256), and the live-progress plane sees partition/chunk completions as
the monotone fraction (scan + phase-1 partitions + phase-2 chunks).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.core.result import MiningResult, resolve_support_count
from repro.datasets.streaming import (
    StreamStats,
    scan_fimi,
    stream_fimi_chunks,
)
from repro.engine.registry import get_backend_entry
from repro.errors import ConfigurationError
from repro.obs.anatomy import anatomy_summary
from repro.obs.sampler import maybe_start_sampler
from repro.outofcore.planner import PartitionPlan, plan_partitions
from repro.representations.bitvector_numpy import pack_database, popcount_rows

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import ObsContext

#: Candidates counted per vectorized batch in phase 2; bounds the gathered
#: ``batch x k x n_bytes`` operand to a few MB regardless of how many
#: candidates phase 1 produced.
CANDIDATE_BATCH = 2048

#: Algorithms whose results are all frequent itemsets — the precondition
#: for the SON superset argument.  A closed-only miner (charm) would drop
#: globally frequent itemsets that are closed in no partition.
_SON_ALGORITHMS_EXCLUDED = frozenset({"charm"})


def local_min_support(
    global_min_support: int, partition_transactions: int, total_transactions: int
) -> int:
    """The scaled phase-1 threshold ``max(1, ceil(s * n_i / N))``.

    Integer ceiling keeps the SON superset guarantee exact: an itemset
    locally infrequent everywhere has global support strictly below ``s``.
    """
    if total_transactions <= 0:
        return 1
    scaled = -(-global_min_support * partition_transactions // total_transactions)
    return max(1, int(scaled))


def count_candidate_supports(
    db_path: str | Path,
    candidates: Sequence[tuple[int, ...]],
    *,
    n_items: int,
    chunk_transactions: int,
    candidate_batch: int = CANDIDATE_BATCH,
    on_chunk=None,
    obs: "ObsContext | None" = None,
) -> np.ndarray:
    """Exact global supports of ``candidates`` via one streaming pass.

    Candidates are grouped by size ``k``; per chunk each group gathers its
    item rows from the packed chunk matrix (``[batch, k, n_bytes]``),
    reduces with ``bitwise_and`` across the ``k`` axis, and popcounts —
    int64 accumulation across chunks cannot overflow.  ``on_chunk`` (when
    given) is called once per processed chunk, feeding the progress plane.
    With ``obs`` each chunk (stream + count) gets an ``outofcore.count_chunk``
    span in the I/O category — phase 2 is stream-bound by design.
    """
    supports = np.zeros(len(candidates), dtype=np.int64)
    if not candidates:
        if on_chunk is not None:
            for _ in stream_fimi_chunks(
                db_path, chunk_transactions, n_items=n_items
            ):
                on_chunk()
        return supports
    by_size: dict[int, list[int]] = {}
    for position, candidate in enumerate(candidates):
        if len(candidate) == 0:
            raise ConfigurationError("cannot count the empty itemset")
        by_size.setdefault(len(candidate), []).append(position)
    groups = [
        (
            np.asarray(positions, dtype=np.int64),
            np.asarray([candidates[i] for i in positions], dtype=np.int64),
        )
        for positions in by_size.values()
    ]
    batch = max(1, int(candidate_batch))
    chunk_index = 0
    chunk_start = time.perf_counter() if obs is not None else 0.0
    for chunk in stream_fimi_chunks(db_path, chunk_transactions, n_items=n_items):
        matrix = pack_database(chunk)
        for positions, item_rows in groups:
            for start in range(0, positions.size, batch):
                rows = matrix[item_rows[start:start + batch]]
                joined = np.bitwise_and.reduce(rows, axis=1)
                supports[positions[start:start + batch]] += popcount_rows(joined)
        if obs is not None:
            # The span starts before the generator read the chunk, so it
            # covers streaming plus counting for this chunk.
            now = time.perf_counter()
            obs.sink.wall_event(
                "outofcore.count_chunk", chunk_start, now, cat="io",
                args={"chunk": chunk_index,
                      "transactions": chunk.n_transactions},
            )
            chunk_start = now
            chunk_index += 1
        if on_chunk is not None:
            on_chunk()
    return supports


def _resolve_tracker(live, *, backend, algorithm, dataset):
    """Out-of-core twin of the engine's ``_resolve_live`` (no db object)."""
    from repro.obs import live as live_mod

    if live is False:
        return None
    if isinstance(live, live_mod.ProgressTracker):
        return live
    if live is None:
        directory = live_mod.default_live_dir()
        if directory is None:
            return None
    else:
        directory = Path(live)
    return live_mod.ProgressTracker(
        kind="mine-out-of-core",
        backend=backend,
        algorithm=algorithm,
        dataset=dataset,
        directory=directory,
    )


def _phase1_candidates(
    db_path: str | Path,
    stats: StreamStats,
    plan: PartitionPlan,
    *,
    entry,
    representation,
    min_sup: int,
    obs,
    tracker,
    options: dict,
) -> tuple[set[tuple[int, ...]], str | None]:
    """Mine every partition at its scaled threshold; union the itemsets.

    Returns the candidate set and the vertical format the partitions were
    mined with (``None`` when the file had no transactions to mine).
    """
    from repro.engine.api import _resolve_representation

    candidates: set[tuple[int, ...]] = set()
    rep_name: str | None = None
    partition = 0
    partition_start = time.perf_counter() if obs is not None else 0.0
    for chunk in stream_fimi_chunks(
        db_path, plan.chunk_transactions, n_items=stats.n_items
    ):
        if rep_name is None:
            # Resolved once (on the first chunk) so every partition mines
            # with the same format and the run config is deterministic.
            rep_name = _resolve_representation(representation, entry, chunk)
        local_min = local_min_support(
            min_sup, chunk.n_transactions, stats.n_transactions
        )
        local = entry.runner(chunk, rep_name, local_min, obs=obs, **options)
        candidates.update(local.itemsets)
        if obs is not None:
            now = time.perf_counter()
            obs.sink.wall_event(
                "outofcore.partition", partition_start, now, cat="mine",
                args={"partition": partition,
                      "transactions": chunk.n_transactions,
                      "local_min_support": local_min,
                      "local_itemsets": len(local)},
            )
            partition_start = now
            partition += 1
        if tracker is not None:
            tracker.task_done()
    return candidates, rep_name


def mine_out_of_core(
    db_path: str | Path,
    *,
    min_support: float | int,
    algorithm: str = "eclat",
    representation: str = "auto",
    backend: str = "serial",
    n_partitions: int | None = None,
    max_memory_bytes: int | None = None,
    candidate_batch: int = CANDIDATE_BATCH,
    obs: "ObsContext | None" = None,
    ledger=None,
    live=None,
    **options,
) -> MiningResult:
    """Mine a FIMI file that need not fit in memory (SON two-phase).

    The facade :func:`repro.mine` routes here when called with
    ``db_path=``; see the module docstring for the dataflow and
    :mod:`repro.outofcore.planner` for how ``max_memory_bytes`` /
    ``n_partitions`` become a partition plan.  Results are bit-identical
    (itemsets and supports) to ``mine(read_fimi(db_path), ...)``.
    """
    from repro.engine.api import _check_options, _ledger_config
    from repro.obs.ledger import default_ledger, record_run

    if algorithm in _SON_ALGORITHMS_EXCLUDED:
        raise ConfigurationError(
            f"out-of-core SON mining needs a miner that returns all "
            f"frequent itemsets; {algorithm!r} returns closed sets only"
        )
    entry = get_backend_entry(backend, algorithm)
    _check_options(entry, options)

    path = Path(db_path)
    ledger_obj = ledger if ledger is not None else default_ledger()
    ledger_active = ledger_obj is not None
    tracker = _resolve_tracker(
        live, backend=backend, algorithm=algorithm, dataset=path.stem
    )
    track = obs is not None or ledger_active
    wall_start = time.perf_counter() if track else 0.0
    cpu_start = time.process_time() if ledger_active else 0.0

    sampler = maybe_start_sampler(obs)
    try:
        scan_start = time.perf_counter() if obs is not None else 0.0
        stats = scan_fimi(path)
        if obs is not None:
            obs.sink.wall_event(
                "outofcore.scan", scan_start, cat="io",
                args={"file_bytes": stats.file_bytes,
                      "transactions": stats.n_transactions},
            )
            obs.metrics.counter("outofcore.read_bytes").inc(stats.file_bytes)
        min_sup = resolve_support_count(stats.n_transactions, min_support)
        plan = plan_partitions(
            stats, max_memory_bytes=max_memory_bytes, n_partitions=n_partitions
        )
        n_chunks = plan.n_partitions if stats.n_transactions else 0
        if tracker is not None:
            # One unit per phase-1 partition and per phase-2 chunk:
            # partition i/N completions drive the monotone fraction.
            tracker.add_total(2 * n_chunks)
        candidates_set, rep_name = _phase1_candidates(
            path, stats, plan,
            entry=entry, representation=representation, min_sup=min_sup,
            obs=obs, tracker=tracker, options=options,
        )
        candidates = sorted(candidates_set)
        on_chunk = tracker.task_done if tracker is not None else None
        supports = count_candidate_supports(
            path, candidates,
            n_items=stats.n_items,
            chunk_transactions=plan.chunk_transactions,
            candidate_batch=candidate_batch,
            on_chunk=on_chunk,
            obs=obs,
        )
        if obs is not None:
            # Phase 1 and phase 2 each stream the whole file once more.
            obs.metrics.counter("outofcore.read_bytes").inc(2 * stats.file_bytes)
    except BaseException:
        if sampler is not None:
            sampler.stop()
        if tracker is not None:
            tracker.finish("failed")
        raise
    if sampler is not None:
        sampler.stop()
    itemsets = {
        candidate: int(support)
        for candidate, support in zip(candidates, supports)
        if support >= min_sup
    }
    result = MiningResult(
        dataset=path.stem,
        algorithm=algorithm,
        representation=rep_name or str(representation),
        min_support=min_sup,
        n_transactions=stats.n_transactions,
        itemsets=itemsets,
        backend=backend,
    )
    if tracker is not None:
        tracker.finish("done")

    if obs is not None:
        obs.metrics.counter(f"engine.outofcore.{backend}.{algorithm}").inc()
        obs.metrics.gauge("outofcore.n_partitions").set(plan.n_partitions)
        obs.metrics.gauge("outofcore.n_candidates").set(len(candidates))
        obs.sink.wall_event(
            "engine.mine_out_of_core", wall_start, cat="engine",
            args={
                "algorithm": algorithm,
                "backend": backend,
                "n_partitions": plan.n_partitions,
                "candidates": len(candidates),
                "itemsets": len(result),
            },
        )
    if ledger_active:
        config = _ledger_config(
            algorithm, result.representation, backend, min_sup, options
        )
        config.update(
            out_of_core=True,
            n_partitions=plan.n_partitions,
            chunk_transactions=plan.chunk_transactions,
            max_memory_bytes=max_memory_bytes,
        )
        record_run(
            "mine-out-of-core",
            dataset=stats.fingerprint(),
            config=config,
            wall_seconds=time.perf_counter() - wall_start,
            cpu_seconds=time.process_time() - cpu_start,
            n_itemsets=len(result),
            obs=obs,
            ledger=ledger,
            extra={
                "n_candidates": len(candidates),
                "false_positive_candidates": len(candidates) - len(result),
                "estimated_chunk_bytes": plan.estimated_chunk_bytes,
                **(
                    {"live": {"run_id": tracker.run_id,
                              "stalls": tracker.stalls}}
                    if tracker is not None else {}
                ),
                **(
                    {"anatomy": summary}
                    if obs is not None
                    and (summary := anatomy_summary(obs.sink)) is not None
                    else {}
                ),
            },
        )
    return result


def union_candidates(results: Iterable[MiningResult]) -> list[tuple[int, ...]]:
    """Sorted union of the itemsets of several partition results (exposed
    for tests and for callers running phase 1 out-of-band)."""
    merged: set[tuple[int, ...]] = set()
    for result in results:
        merged.update(result.itemsets)
    return sorted(merged)
