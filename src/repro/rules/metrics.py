"""Association-rule interestingness metrics.

Section II motivates FIM with market-basket association rules (the famous
diapers-and-beer anecdote).  A rule ``antecedent => consequent`` is scored
from the supports of the antecedent, consequent, and their union; all
metrics take *relative* supports in [0, 1].
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


def _check(p: float, name: str) -> None:
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"{name} must be a relative support in [0, 1], got {p}")


def confidence(support_union: float, support_antecedent: float) -> float:
    """P(consequent | antecedent).  Undefined antecedent -> 0."""
    _check(support_union, "support_union")
    _check(support_antecedent, "support_antecedent")
    if support_antecedent == 0.0:
        return 0.0
    return support_union / support_antecedent


def lift(
    support_union: float, support_antecedent: float, support_consequent: float
) -> float:
    """Observed co-occurrence over the independence expectation.

    lift > 1 means positively correlated; lift == 1 independent.
    """
    _check(support_consequent, "support_consequent")
    conf = confidence(support_union, support_antecedent)
    if support_consequent == 0.0:
        return 0.0
    return conf / support_consequent


def leverage(
    support_union: float, support_antecedent: float, support_consequent: float
) -> float:
    """Difference between observed and expected co-occurrence frequency."""
    _check(support_union, "support_union")
    _check(support_antecedent, "support_antecedent")
    _check(support_consequent, "support_consequent")
    return support_union - support_antecedent * support_consequent


def conviction(
    support_union: float, support_antecedent: float, support_consequent: float
) -> float:
    """How much more often the rule would be wrong under independence.

    Ranges in [0, inf); a confidence-1 rule has infinite conviction.
    """
    conf = confidence(support_union, support_antecedent)
    if conf >= 1.0:
        return math.inf
    _check(support_consequent, "support_consequent")
    return (1.0 - support_consequent) / (1.0 - conf)
