"""Rule export: CSV and JSON serialization of association rules.

Downstream consumers (dashboards, recommender pipelines) rarely speak
Python tuples; these helpers emit the two formats everything speaks.
"""

from __future__ import annotations

import csv
import io
import json
import math
from pathlib import Path
from typing import Iterable, TextIO

from repro.rules.generation import AssociationRule

CSV_COLUMNS = (
    "antecedent",
    "consequent",
    "support",
    "confidence",
    "lift",
    "leverage",
    "conviction",
)


def _rule_row(rule: AssociationRule) -> dict:
    return {
        "antecedent": " ".join(map(str, rule.antecedent)),
        "consequent": " ".join(map(str, rule.consequent)),
        "support": round(rule.support, 6),
        "confidence": round(rule.confidence, 6),
        "lift": round(rule.lift, 6),
        "leverage": round(rule.leverage, 6),
        # CSV/JSON have no Infinity literal; emit an empty marker.
        "conviction": (
            round(rule.conviction, 6)
            if math.isfinite(rule.conviction)
            else None
        ),
    }


def rules_to_csv(
    rules: Iterable[AssociationRule], target: TextIO | str | Path | None = None
) -> str:
    """Write rules as CSV; returns the text (and writes ``target`` if given)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=CSV_COLUMNS)
    writer.writeheader()
    for rule in rules:
        writer.writerow(_rule_row(rule))
    text = buffer.getvalue()
    if isinstance(target, (str, Path)):
        Path(target).write_text(text)
    elif target is not None:
        target.write(text)
    return text


def rules_to_json(
    rules: Iterable[AssociationRule], target: str | Path | None = None
) -> str:
    """Write rules as a JSON array; returns the text."""
    payload = [
        {
            **_rule_row(rule),
            "antecedent": list(rule.antecedent),
            "consequent": list(rule.consequent),
        }
        for rule in rules
    ]
    text = json.dumps(payload, indent=2)
    if target is not None:
        Path(target).write_text(text)
    return text


def export_rules(
    source,
    target: TextIO | str | Path | None = None,
    *,
    fmt: str = "json",
    min_support: float | int | None = None,
    min_confidence: float = 0.5,
    min_lift: float | None = None,
) -> str:
    """Generate rules from any ``Queryable`` source and serialize them.

    ``source`` is anything implementing
    :class:`repro.core.queryable.Queryable` — a fresh
    :class:`~repro.core.result.MiningResult` or a persisted
    :class:`repro.index.ItemsetIndex` — so exporting straight from the
    mined artifact needs no intermediate result object.  ``fmt`` is
    ``"json"`` or ``"csv"``; the serialized text is returned (and written
    to ``target`` when given).
    """
    from repro.errors import ConfigurationError

    rules = source.rules(
        min_support=min_support,
        min_confidence=min_confidence,
        min_lift=min_lift,
    )
    if fmt == "json":
        if target is not None and not isinstance(target, (str, Path)):
            raise ConfigurationError(
                "fmt='json' writes to paths only; pass a str or Path target"
            )
        return rules_to_json(rules, target)
    if fmt == "csv":
        return rules_to_csv(rules, target)
    raise ConfigurationError(
        f"unknown export format {fmt!r}; choose 'json' or 'csv'"
    )


def rules_from_json(source: str | Path) -> list[AssociationRule]:
    """Load rules previously written by :func:`rules_to_json`."""
    raw = json.loads(Path(source).read_text())
    rules = []
    for entry in raw:
        conviction = entry["conviction"]
        rules.append(
            AssociationRule(
                antecedent=tuple(entry["antecedent"]),
                consequent=tuple(entry["consequent"]),
                support=entry["support"],
                confidence=entry["confidence"],
                lift=entry["lift"],
                leverage=entry["leverage"],
                conviction=math.inf if conviction is None else conviction,
            )
        )
    return rules
