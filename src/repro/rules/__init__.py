"""Association rule generation and interestingness metrics."""

from repro.rules.generation import AssociationRule, generate_rules, top_rules_for
from repro.rules.export import (
    export_rules,
    rules_from_json,
    rules_to_csv,
    rules_to_json,
)
from repro.rules.metrics import confidence, conviction, leverage, lift

__all__ = [
    "AssociationRule",
    "generate_rules",
    "top_rules_for",
    "confidence",
    "lift",
    "leverage",
    "conviction",
    "rules_to_csv",
    "rules_to_json",
    "rules_from_json",
    "export_rules",
]
