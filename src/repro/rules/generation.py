"""Association-rule generation from a mined :class:`MiningResult`.

Implements the classic Agrawal-Srikant rule-generation phase: for each
frequent itemset, every non-empty proper subset is a candidate antecedent;
the rule is kept when its confidence clears the threshold.  Because all
subsets of a frequent itemset are themselves frequent (downward closure),
every support needed is already in the result — no extra database scans.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain, combinations
from typing import Iterator

from repro.core.itemset import Itemset
from repro.core.result import MiningResult
from repro.errors import ConfigurationError, MiningError
from repro.rules import metrics


@dataclass(frozen=True)
class AssociationRule:
    """One ``antecedent => consequent`` rule with its scores."""

    antecedent: Itemset
    consequent: Itemset
    support: float
    confidence: float
    lift: float
    leverage: float
    conviction: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ante = ",".join(map(str, self.antecedent))
        cons = ",".join(map(str, self.consequent))
        return (
            f"{{{ante}}} => {{{cons}}} "
            f"(sup={self.support:.3f}, conf={self.confidence:.3f}, "
            f"lift={self.lift:.2f})"
        )


def _proper_subsets(items: Itemset) -> Iterator[Itemset]:
    """Non-empty proper subsets, smallest first."""
    return chain.from_iterable(
        combinations(items, k) for k in range(1, len(items))
    )


def generate_rules(
    result: MiningResult,
    min_confidence: float = 0.5,
    min_lift: float | None = None,
) -> list[AssociationRule]:
    """All rules meeting the confidence (and optional lift) thresholds.

    Rules are returned sorted by descending confidence then lift, the order
    a recommendation engine would consume them in.
    """
    if not 0.0 <= min_confidence <= 1.0:
        raise ConfigurationError(
            f"min_confidence must be in [0, 1], got {min_confidence}"
        )
    if result.n_transactions <= 0:
        raise MiningError(
            "rule generation needs n_transactions > 0 on the mining result"
        )
    n = result.n_transactions
    rules: list[AssociationRule] = []
    for items, support_abs in result.itemsets.items():
        if len(items) < 2:
            continue
        sup_union = support_abs / n
        for antecedent in _proper_subsets(items):
            consequent = tuple(i for i in items if i not in antecedent)
            try:
                sup_ante = result.support(antecedent) / n
                sup_cons = result.support(consequent) / n
            except KeyError as exc:  # pragma: no cover - closure violation
                raise MiningError(
                    f"subset {exc} of frequent itemset {items} missing from "
                    "result; downward closure violated"
                ) from exc
            conf = metrics.confidence(sup_union, sup_ante)
            if conf < min_confidence:
                continue
            rule_lift = metrics.lift(sup_union, sup_ante, sup_cons)
            if min_lift is not None and rule_lift < min_lift:
                continue
            rules.append(
                AssociationRule(
                    antecedent=antecedent,
                    consequent=consequent,
                    support=sup_union,
                    confidence=conf,
                    lift=rule_lift,
                    leverage=metrics.leverage(sup_union, sup_ante, sup_cons),
                    conviction=metrics.conviction(sup_union, sup_ante, sup_cons),
                )
            )
    rules.sort(key=lambda r: (-r.confidence, -r.lift, r.antecedent, r.consequent))
    return rules


def top_rules_for(
    rules: list[AssociationRule], item: int, limit: int = 5
) -> list[AssociationRule]:
    """The strongest rules whose antecedent contains ``item``.

    This is the "customers who bought X also buy ..." query of Section II.
    """
    matching = [r for r in rules if item in r.antecedent]
    return matching[:limit]
