"""Command-line interface: ``python -m repro <command>``.

Six subcommands cover the common workflows:

* ``mine``      — frequent itemsets from a FIMI file or a named surrogate,
  routed through ``repro.mine()`` with ``--backend
  serial|multiprocessing|vectorized|shared_memory`` and
  ``--representation auto|...``; ``--out-of-core`` switches to SON
  two-phase partitioned mining that streams the file in bounded-memory
  partitions (``--max-memory-bytes`` / ``--partitions`` shape the plan);
* ``rules``     — association rules on top of a mining run;
* ``index``     — the precomputed closed-itemset index: ``index build``
  mines once at a low support floor and persists a memory-mapped
  artifact, ``index query`` answers top-k / support-of / frequent-at /
  rules questions from that artifact without re-reading the database,
  and ``index info`` dumps the artifact header;
* ``scalability`` — the paper pipeline: trace a miner, replay it on the
  simulated Blacklight across thread counts, print the table and chart;
* ``profile``   — run a study fully instrumented and print the metrics
  report (per-level candidate volumes, NumaLink bytes per region, busy
  time, fork/join overhead);
* ``obs``       — the observability toolbox: ``obs tail`` streams recent
  run records (``--follow`` keeps polling for new ones), ``obs report``
  dumps one, ``obs compare`` diffs two runs or ``BENCH_*.json`` files and
  exits nonzero past a regression threshold (the CI gate), ``obs watch``
  renders the live status of an in-flight run (progress bar, per-worker
  heartbeats, stalls, ETA), and ``obs gc`` caps the ledger and live-status
  directories.

``mine``, ``scalability``, and ``profile`` accept ``--trace-out FILE`` to
write a Chrome trace-event JSON loadable in Perfetto, and ``mine`` /
``scalability`` accept ``--metrics`` to print the metrics report.  Those
three commands also append each run to the ledger under ``.repro/runs/``
(``--ledger-dir`` relocates it, ``--no-ledger`` opts out).  ``mine`` also
publishes live status to ``.repro/live/`` by default (``--progress`` adds
a single refreshing stderr progress line, ``--live-dir`` relocates the
directory, ``--no-live`` opts out).
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from pathlib import Path

from repro.analysis.charts import speedup_chart
from repro.analysis.tables import (
    render_metrics_report,
    render_runtime_table,
    render_speedup_series,
    render_top_itemsets,
)
from repro.datasets import available_datasets, get_dataset, read_fimi
from repro.datasets.transaction_db import TransactionDatabase
from repro.engine import available_algorithms, available_backends, mine
from repro.errors import ConfigurationError, IndexArtifactError, ReproError
from repro.machine.topology import standard_thread_counts
from repro.obs import ChromeTraceSink, NullSink, ObsContext
from repro.parallel import run_scalability_study, runtime_table, speedup_series

_MINE_REPRESENTATIONS = (
    "auto", "tidset", "bitvector", "bitvector_numpy", "diffset", "hybrid",
)


def _load_database(source: str) -> TransactionDatabase:
    """A path loads a FIMI file; otherwise the name hits the registry."""
    path = Path(source)
    if path.exists():
        return read_fimi(path)
    if source in available_datasets():
        return get_dataset(source)
    raise SystemExit(
        f"error: {source!r} is neither a file nor a dataset name "
        f"(available: {', '.join(available_datasets())})"
    )


def _parse_support(text: str) -> float | int:
    value = float(text)
    if value >= 1 and value == int(value):
        return int(value)
    return value


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("dataset", help="FIMI file path or dataset name")
    parser.add_argument(
        "-s", "--min-support", type=_parse_support, default=0.5,
        help="absolute count (>= 1) or relative fraction (< 1); default 0.5",
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write a Chrome trace-event JSON (load in ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the collected metrics report after the run",
    )
    parser.add_argument(
        "--metrics-prom", metavar="FILE", default=None,
        help="write metrics in Prometheus text exposition format "
             "(textfile-collector ready)",
    )
    parser.add_argument(
        "--sample-interval", metavar="SECONDS", type=float, default=None,
        help="sample RSS/CPU/io-bytes resource tracks into the trace at "
             "this period (pairs with --trace-out)",
    )


def _add_ledger_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-ledger", action="store_true",
        help="do not append this run to the run ledger",
    )
    parser.add_argument(
        "--ledger-dir", metavar="DIR", default=None,
        help="run-ledger directory (default: .repro/runs)",
    )


def _add_live_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--progress", action="store_true",
        help="render a single refreshing progress/ETA line on stderr",
    )
    parser.add_argument(
        "--no-live", action="store_true",
        help="do not publish a live status file for this run",
    )
    parser.add_argument(
        "--live-dir", metavar="DIR", default=None,
        help="live status-file directory (default: .repro/live)",
    )


def _live_status_dir(args: argparse.Namespace) -> Path:
    """The live directory the ``obs`` read-side commands should look in.

    ``--live-dir`` wins, then a ``REPRO_LIVE`` directory override; a
    ``REPRO_LIVE=0`` kill switch only disables *writing*, so reading falls
    back to the stock location rather than erroring out.
    """
    from repro.obs.live import DEFAULT_LIVE_DIR, default_live_dir

    if args.live_dir:
        return Path(args.live_dir)
    return default_live_dir() or DEFAULT_LIVE_DIR


class _ProgressLine:
    """The ``--progress`` stderr renderer: one refreshing ``\\r`` line.

    Tracks the rendered width so each repaint pads over the previous
    frame, and so the line can be **erased** when the run dies mid-frame —
    a traceback must never render glued to stale progress text.
    """

    def __init__(self) -> None:
        self.width = 0

    def render(self, document: dict) -> None:
        from repro.obs.live import progress_line

        line = progress_line(document)
        padding = " " * max(self.width - len(line), 0)
        self.width = len(line)
        print("\r" + line + padding, end="", file=sys.stderr, flush=True)

    def clear(self) -> None:
        """Erase the status line and return the cursor to column 0."""
        if self.width:
            print("\r" + " " * self.width + "\r",
                  end="", file=sys.stderr, flush=True)
            self.width = 0

    def finish(self, *, error: bool) -> None:
        """Leave stderr clean: erase the line on error, else newline it."""
        if error:
            self.clear()
        elif self.width:
            print(file=sys.stderr)
            self.width = 0


def _resolve_cli_live(
    args: argparse.Namespace,
    dataset_name: str,
    *,
    kind: str = "mine",
) -> tuple[object, _ProgressLine | None]:
    """The ``live=`` argument ``cmd_mine`` passes to ``repro.mine()``.

    Plain runs defer to the engine (``None`` → ``REPRO_LIVE`` resolution);
    ``--progress`` needs the renderer callback, so it builds the tracker
    here and the engine uses it as-is (still attaching the ledger-history
    ETA prior).  Returns ``(live, progress)`` where ``progress`` is the
    stderr renderer (or ``None``) whose :meth:`_ProgressLine.finish` the
    caller must invoke in a ``finally``.
    """
    if args.no_live:
        return False, None
    if not args.progress:
        return (args.live_dir if args.live_dir else None), None

    from repro.obs.live import ProgressTracker, default_live_dir

    # Under a REPRO_LIVE=0 kill switch --progress still renders, from a
    # purely in-memory tracker (directory=None → no status file).
    directory = Path(args.live_dir) if args.live_dir else default_live_dir()
    progress = _ProgressLine()
    tracker = ProgressTracker(
        kind=kind,
        backend=args.backend,
        algorithm=args.algorithm,
        dataset=dataset_name,
        directory=directory,
        on_update=progress.render,
    )
    return tracker, progress


@contextmanager
def _ledger_scope(args: argparse.Namespace):
    """Yield the ledger for this invocation (None under ``--no-ledger``).

    Resolution order: ``--no-ledger`` (record nothing, beating any ambient
    ``REPRO_LEDGER``), then ``--ledger-dir``, then an explicitly-set
    ``REPRO_LEDGER`` (including its ``0``/``off`` kill switch — what test
    suites rely on), then the CLI default of recording to ``.repro/runs``.
    """
    import os

    from repro.obs.ledger import (
        LEDGER_ENV,
        Ledger,
        default_ledger,
        reset_default_ledger,
        set_default_ledger,
    )

    if getattr(args, "no_ledger", False):
        set_default_ledger(None)
        try:
            yield None
        finally:
            reset_default_ledger()
    elif args.ledger_dir:
        yield Ledger(args.ledger_dir)
    elif os.environ.get(LEDGER_ENV) is not None:
        yield default_ledger()
    else:
        yield Ledger()


def _open_ledger(args: argparse.Namespace):
    """The read-side ledger for the ``obs`` subcommands."""
    from repro.obs.ledger import Ledger

    return Ledger(args.ledger_dir) if args.ledger_dir else Ledger()


def _build_obs(args: argparse.Namespace) -> ObsContext | None:
    """An ObsContext when any obs flag is set, else None (zero overhead)."""
    interval = getattr(args, "sample_interval", None)
    if interval is not None and interval <= 0:
        raise SystemExit(
            f"error: --sample-interval must be positive, got {interval}"
        )
    obs = None
    if args.trace_out:
        try:
            sink = ChromeTraceSink(args.trace_out)
        except ConfigurationError as exc:
            raise SystemExit(f"error: {exc}") from None
        obs = ObsContext(sink=sink)
    elif args.metrics or getattr(args, "metrics_prom", None):
        obs = ObsContext(sink=NullSink())
    if obs is not None and interval is not None:
        obs.sample_interval = interval
    return obs


def _finish_obs(args: argparse.Namespace, obs: ObsContext | None) -> None:
    """Close the sink (writing the trace file) and print what was asked."""
    if obs is None:
        return
    obs.close()
    if args.metrics:
        print()
        print(render_metrics_report(obs.metrics))
    prom_path = getattr(args, "metrics_prom", None)
    if prom_path:
        Path(prom_path).write_text(
            obs.metrics.to_prometheus(), encoding="utf-8"
        )
        print(f"\nprometheus metrics written to {prom_path}")
    if args.trace_out:
        print(f"\ntrace written to {args.trace_out} (load in ui.perfetto.dev)")


def cmd_mine(args: argparse.Namespace) -> int:
    if not args.out_of_core and (
        args.max_memory_bytes is not None or args.partitions is not None
    ):
        raise SystemExit(
            "error: --max-memory-bytes / --partitions configure out-of-core "
            "mining; add --out-of-core"
        )
    if args.out_of_core:
        # Out-of-core streams the file itself; it must be a real path, not
        # a registry surrogate (those are in-memory by definition).
        if not Path(args.dataset).exists():
            raise SystemExit(
                f"error: --out-of-core needs a FIMI file path; "
                f"{args.dataset!r} is not a file"
            )
        db = None
        dataset_name = Path(args.dataset).stem
    else:
        db = _load_database(args.dataset)
        dataset_name = db.name
    obs = _build_obs(args)
    # finally: even when a parallel run aborts, the trace file must land on
    # disk (valid JSON) with whatever worker telemetry was merged.
    try:
        with _ledger_scope(args) as ledger:
            # Only forward flags the user actually set: the registry
            # rejects options a (backend, algorithm) pair doesn't take,
            # so unconditional defaults would break serial runs.
            options: dict = {}
            if args.workers is not None:
                options["n_workers"] = args.workers
            if args.schedule is not None:
                options["schedule"] = args.schedule
            if args.spawn_depth is not None:
                options["spawn_depth"] = args.spawn_depth
            if args.spawn_min is not None:
                options["spawn_min_members"] = args.spawn_min
            live, progress = _resolve_cli_live(
                args, dataset_name,
                kind="mine-out-of-core" if args.out_of_core else "mine",
            )
            try:
                if args.out_of_core:
                    result = mine(
                        db_path=args.dataset,
                        algorithm=args.algorithm,
                        representation=args.representation,
                        backend=args.backend,
                        min_support=args.min_support,
                        max_memory_bytes=args.max_memory_bytes,
                        n_partitions=args.partitions,
                        obs=obs,
                        ledger=ledger,
                        live=live,
                        **options,
                    )
                else:
                    result = mine(
                        db,
                        algorithm=args.algorithm,
                        representation=args.representation,
                        backend=args.backend,
                        min_support=args.min_support,
                        obs=obs,
                        ledger=ledger,
                        live=live,
                        **options,
                    )
            except ReproError as exc:
                raise SystemExit(f"error: {exc}") from None
            finally:
                if progress is not None:
                    # Erase a half-drawn status line when the run raised or
                    # was interrupted (so the traceback starts at column
                    # 0); newline-terminate the final frame otherwise.
                    progress.finish(error=sys.exc_info()[0] is not None)
        print(result.summary())
        if args.top:
            listing = render_top_itemsets(result, args.top)
            if listing:
                print(listing)
    finally:
        _finish_obs(args, obs)
    return 0


def cmd_rules(args: argparse.Namespace) -> int:
    db = _load_database(args.dataset)
    try:
        result = mine(
            db, algorithm="fpgrowth", min_support=args.min_support,
            ledger=None, live=False,
        )
        # One code path for rules regardless of the source: the Queryable
        # protocol (a persisted index answers the same call via
        # ``repro index query --rules``).
        rules = result.rules(min_confidence=args.min_confidence)
    except ReproError as exc:
        raise SystemExit(f"error: {exc}") from None
    print(f"{len(rules)} rules at confidence >= {args.min_confidence}")
    for rule in rules[: args.top]:
        print(f"  {rule}")
    return 0


def cmd_index_build(args: argparse.Namespace) -> int:
    from repro.index import ItemsetIndex

    db = _load_database(args.dataset)
    obs = _build_obs(args)
    try:
        with _ledger_scope(args) as ledger:
            try:
                index = ItemsetIndex.build(
                    db, args.min_support, obs=obs, ledger=ledger
                )
            except ReproError as exc:
                raise SystemExit(f"error: {exc}") from None
        path = index.save(args.output)
        print(
            f"index written to {path}: {index.n_closed} closed itemsets "
            f"at floor {index.floor} "
            f"({db.name}, {index.n_transactions} transactions)"
        )
    finally:
        _finish_obs(args, obs)
    return 0


def cmd_index_query(args: argparse.Namespace) -> int:
    import time

    from repro.index import ItemsetIndex
    from repro.obs.ledger import record_run

    try:
        index = ItemsetIndex.open(args.index)
    except (IndexArtifactError, OSError) as exc:
        raise SystemExit(f"error: {exc}") from None
    with index:
        with _ledger_scope(args) as ledger:
            wall0 = time.perf_counter()
            cpu0 = time.process_time()
            try:
                if args.itemset:
                    items = tuple(int(t) for t in args.itemset.split())
                    support = index.support_of(items)
                    query: dict = {"query": "support_of", "items": items}
                    n_itemsets = None if support is None else 1
                    if support is None:
                        print(
                            f"{{{','.join(map(str, items))}}}: "
                            f"below floor {index.floor} (not indexed)"
                        )
                    else:
                        print(f"{{{','.join(map(str, items))}}}: {support}")
                elif args.rules:
                    rules = index.rules(
                        min_support=args.min_support,
                        min_confidence=args.min_confidence,
                    )
                    query = {
                        "query": "rules",
                        "min_support": args.min_support,
                        "min_confidence": args.min_confidence,
                    }
                    n_itemsets = len(rules)
                    print(
                        f"{len(rules)} rules at confidence >= "
                        f"{args.min_confidence}"
                    )
                    for rule in rules[: args.top]:
                        print(f"  {rule}")
                else:
                    result = index.frequent_at(
                        args.min_support
                        if args.min_support is not None
                        else index.floor
                    )
                    query = {
                        "query": "frequent_at",
                        "min_support": args.min_support,
                    }
                    n_itemsets = len(result)
                    print(result.summary())
                    if args.top:
                        listing = render_top_itemsets(result, args.top)
                        if listing:
                            print(listing)
            except ReproError as exc:
                raise SystemExit(f"error: {exc}") from None
            record_run(
                "index-query",
                dataset=index.dataset_fingerprint,
                config={
                    "algorithm": "index",
                    "backend": "index",
                    "index_config_hash": index.config_hash,
                    "floor": index.floor,
                    **query,
                },
                wall_seconds=time.perf_counter() - wall0,
                cpu_seconds=time.process_time() - cpu0,
                n_itemsets=n_itemsets,
                ledger=ledger,
            )
    return 0


def cmd_index_info(args: argparse.Namespace) -> int:
    from repro.index import ItemsetIndex

    try:
        with ItemsetIndex.open(args.index) as index:
            print(json.dumps(index.info(), indent=2, sort_keys=True))
    except (IndexArtifactError, OSError) as exc:
        raise SystemExit(f"error: {exc}") from None
    return 0


def cmd_scalability(args: argparse.Namespace) -> int:
    db = _load_database(args.dataset)
    counts = standard_thread_counts(args.max_threads)
    obs = _build_obs(args)
    try:
        with _ledger_scope(args) as ledger:
            study = run_scalability_study(
                db, args.algorithm, args.representation, args.min_support,
                thread_counts=counts, obs=obs, ledger=ledger,
            )
        print(study.mining_result.summary())
        print()
        print(
            render_runtime_table(
                runtime_table([study], "simulated runtime (seconds)")
            )
        )
        series = speedup_series([study])
        print()
        print(render_speedup_series(series, title="speedup vs one thread"))
        print()
        print(speedup_chart(series, title="speedup curve"))
    finally:
        _finish_obs(args, obs)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Run one fully instrumented study and print the metrics report."""
    db = _load_database(args.dataset)
    counts = standard_thread_counts(args.max_threads)
    if args.threads is not None and args.threads not in counts:
        raise SystemExit(
            f"error: --threads {args.threads} is not in the sweep {counts}"
        )
    try:
        sink = ChromeTraceSink(args.trace_out) if args.trace_out else NullSink()
    except ConfigurationError as exc:
        raise SystemExit(f"error: {exc}") from None
    obs = ObsContext(sink=sink)
    try:
        with _ledger_scope(args) as ledger:
            study = run_scalability_study(
                db, args.algorithm, args.representation, args.min_support,
                thread_counts=counts, obs=obs, obs_threads=args.threads,
                ledger=ledger,
            )
    finally:
        obs.close()

    target = args.threads if args.threads is not None else max(counts)
    print(study.mining_result.summary())
    print()
    print(
        f"replay profiled at {target} threads on {study.machine}; host wall "
        f"clock: mine {study.notes['wall_mine_seconds'] * 1e3:.1f} ms, "
        f"replay {study.notes['wall_replay_seconds'] * 1e3:.1f} ms"
    )
    print()
    print(
        render_metrics_report(
            obs.metrics,
            title=f"metrics — {study.label()} "
            f"{study.algorithm}/{study.representation} @ {target} threads",
        )
    )
    if args.trace_out:
        print(f"\ntrace written to {args.trace_out} (load in ui.perfetto.dev)")
    return 0


def cmd_obs_tail(args: argparse.Namespace) -> int:
    """Print the most recent ledger records, one summary line each.

    ``--follow`` then keeps polling the ledger and prints each new record
    as it is appended (Ctrl-C to stop) — the JSONL analogue of
    ``tail -f``.
    """
    from repro.obs.ledger import iter_summary_lines

    ledger = _open_ledger(args)
    records = ledger.last(args.n)
    if not records and not args.follow:
        print(f"no runs recorded under {ledger.path}")
        return 0
    for line in iter_summary_lines(records):
        print(line)
    if args.follow:
        try:
            for record in ledger.follow(poll_seconds=args.poll):
                print(record.summary_line(), flush=True)
        except KeyboardInterrupt:
            pass
    return 0


def cmd_obs_watch(args: argparse.Namespace) -> int:
    """Refreshing plain-text view of one live run's status file."""
    import time

    from repro.obs.live import (
        TERMINAL_STATES,
        find_status,
        read_status,
        render_status,
    )

    directory = _live_status_dir(args)
    path = find_status(args.run, directory)
    if path is None:
        raise SystemExit(
            f"error: no live run matching {args.run!r} under {directory} "
            f"(try 'repro obs watch -1' for the most recent)"
        )
    # On a terminal each refresh repaints from the top-left; elsewhere
    # (pipes, CI logs) refreshes are separated by a blank line instead.
    clear = "\x1b[H\x1b[2J" if sys.stdout.isatty() else ""
    first = True
    try:
        while True:
            document = read_status(path)
            if document is None:
                raise SystemExit(f"error: could not read {path}")
            if clear:
                print(clear, end="")
            elif not first:
                print()
            first = False
            print(render_status(document), flush=True)
            if args.once or document.get("state") in TERMINAL_STATES:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def cmd_obs_gc(args: argparse.Namespace) -> int:
    """Cap the run ledger and the live status directory."""
    from repro.obs.live import prune_status_files

    ledger = _open_ledger(args)
    dropped = ledger.rotate(args.keep)
    print(
        f"ledger {ledger.path}: dropped {dropped} record(s), "
        f"keeping the newest {args.keep}"
    )
    directory = _live_status_dir(args)
    removed = prune_status_files(directory, keep=args.live_keep)
    print(
        f"live {directory}: removed {removed} file(s), "
        f"keeping the newest {args.live_keep} run(s)"
    )
    return 0


def cmd_obs_report(args: argparse.Namespace) -> int:
    """Dump one ledger record (by run-id prefix or -1/-2/... index) as JSON."""
    ledger = _open_ledger(args)
    record = ledger.find(args.run)
    if record is None:
        raise SystemExit(
            f"error: no run matching {args.run!r} in {ledger.path} "
            f"(try 'repro obs tail')"
        )
    print(json.dumps(record.to_json_dict(), indent=2, default=str))
    return 0


def cmd_obs_compare(args: argparse.Namespace) -> int:
    """Diff two runs / bench files; exit 1 past the regression threshold."""
    from repro.obs.compare import (
        compare_records,
        load_record,
        render_comparison,
    )

    ledger = _open_ledger(args)
    try:
        base = load_record(args.baseline, ledger)
        current = load_record(args.current, ledger)
    except (FileNotFoundError, ValueError, OSError) as exc:
        raise SystemExit(f"error: {exc}") from None
    comparison = compare_records(
        base, current,
        ratios_only=args.ratios_only,
        metrics=args.metric or None,
    )
    print(render_comparison(comparison, args.threshold))
    return comparison.exit_code(args.threshold, strict=args.strict)


def cmd_obs_anatomy(args: argparse.Namespace) -> int:
    """Per-phase self-time attribution + critical path of one trace."""
    from repro.obs.anatomy import (
        analyze,
        flamegraph_speedscope,
        render_anatomy,
        validate_speedscope,
    )

    try:
        anatomy = analyze(args.trace)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot load trace {args.trace!r}: {exc}") \
            from None
    if anatomy.n_spans == 0:
        raise SystemExit(f"error: {args.trace!r} holds no duration spans")
    if args.json:
        print(json.dumps(anatomy.summary(), indent=2))
    else:
        print(render_anatomy(anatomy))
    if args.check:
        errors = anatomy.check(rel_tol=args.tolerance)
        try:
            validate_speedscope(flamegraph_speedscope(anatomy))
        except ValueError as exc:
            errors.append(f"speedscope export invalid: {exc}")
        if errors:
            print()
            for error in errors:
                print(f"CHECK FAILED: {error}", file=sys.stderr)
            return 1
        print()
        print("check ok: bucket self-times sum to lane wall; "
              "speedscope export valid")
    return 0


def cmd_obs_flame(args: argparse.Namespace) -> int:
    """Export a trace as a flamegraph (speedscope JSON or collapsed)."""
    from repro.obs.anatomy import (
        analyze,
        flamegraph_collapsed,
        flamegraph_speedscope,
    )

    try:
        anatomy = analyze(args.trace)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot load trace {args.trace!r}: {exc}") \
            from None
    if anatomy.n_spans == 0:
        raise SystemExit(f"error: {args.trace!r} holds no duration spans")
    trace_path = Path(args.trace)
    stem = trace_path.stem
    if args.format == "collapsed":
        output = Path(args.output) if args.output else \
            trace_path.with_name(f"{stem}.collapsed.txt")
        output.write_text(flamegraph_collapsed(anatomy), encoding="utf-8")
        print(f"collapsed stacks written to {output} "
              f"(feed to flamegraph.pl or speedscope)")
    else:
        output = Path(args.output) if args.output else \
            trace_path.with_name(f"{stem}.speedscope.json")
        document = flamegraph_speedscope(anatomy, name=stem)
        output.write_text(json.dumps(document), encoding="utf-8")
        print(f"speedscope profile written to {output} "
              f"(load at https://www.speedscope.app)")
    return 0


def _resolve_explain_source(token: str, ledger) -> tuple[dict, dict | None, str]:
    """Resolve one ``obs explain`` operand.

    A path to a trace file re-derives the anatomy; a ledger token
    (run-id prefix or negative index) uses the anatomy summary recorded
    in the run's ``extra``.  Returns ``(summary, record_or_None, label)``.
    """
    from repro.obs.anatomy import analyze

    path = Path(token)
    if path.exists():
        try:
            anatomy = analyze(path)
        except (OSError, ValueError) as exc:
            raise SystemExit(
                f"error: cannot load trace {token!r}: {exc}") from None
        if anatomy.n_spans == 0:
            raise SystemExit(f"error: {token!r} holds no duration spans")
        return anatomy.summary(), None, token
    record = ledger.find(token)
    if record is None:
        raise SystemExit(
            f"error: {token!r} is neither a trace file nor a run in "
            f"{ledger.path} (try 'repro obs tail')"
        )
    record_dict = record.to_json_dict()
    summary = (record_dict.get("extra") or {}).get("anatomy")
    if not isinstance(summary, dict):
        raise SystemExit(
            f"error: run {record.run_id[:12]} has no anatomy summary — it "
            f"was recorded without tracing; re-run with --trace-out or "
            f"pass a trace file"
        )
    return summary, record_dict, record.run_id[:12]


def cmd_obs_explain(args: argparse.Namespace) -> int:
    """Attribute the wall-clock delta between two runs per phase bucket."""
    from repro.obs.anatomy import explain

    ledger = _open_ledger(args)
    base_summary, base_record, base_label = _resolve_explain_source(
        args.baseline, ledger
    )
    cur_summary, cur_record, cur_label = _resolve_explain_source(
        args.current, ledger
    )
    explanation = explain(base_summary, cur_summary)
    print(explanation.render(base_label=base_label, current_label=cur_label))

    # Predicted-vs-actual per phase, when both records carry the counters
    # the cost model prices (runs recorded through the ledger with obs).
    from repro.machine.cost_model import predicted_breakdown

    rows = []
    for label, record, summary in (
        (base_label, base_record, base_summary),
        (cur_label, cur_record, cur_summary),
    ):
        metrics = (record or {}).get("metrics") or {}
        counters = metrics.get("counters")
        if not counters:
            continue
        predicted = predicted_breakdown(counters, metrics.get("gauges"))
        actual = summary.get("buckets") or {}
        rows.append((label, predicted, actual))
    if rows:
        print()
        print("predicted vs actual (cost model share of busy time):")
        for label, predicted, actual in rows:
            predicted_total = sum(predicted.values()) or 1.0
            actual_busy = sum(
                float(seconds) for bucket, seconds in actual.items()
                if bucket != "idle"
            ) or 1.0
            parts = []
            for bucket in ("compute", "steal", "ipc", "io"):
                pred_share = predicted.get(bucket, 0.0) / predicted_total
                act_share = float(actual.get(bucket, 0.0)) / actual_busy
                parts.append(
                    f"{bucket} {pred_share:.0%}/{act_share:.0%}"
                )
            print(f"  {label}: " + "  ".join(parts) + "  (predicted/actual)")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the mining query server until interrupted (Ctrl-C / SIGTERM)."""
    import asyncio
    import signal

    from repro.serve import MiningServer

    databases = [_load_database(source) for source in args.datasets]
    obs = _build_obs(args)
    try:
        with _ledger_scope(args) as ledger:
            server = MiningServer(
                datasets=databases,
                indexes=args.index or (),
                host=args.host,
                port=args.port,
                max_inflight=args.max_inflight,
                default_deadline_seconds=args.deadline_seconds,
                retry_after_seconds=args.retry_after_seconds,
                cache_entries=args.cache_entries,
                executor_workers=args.executor_workers,
                obs=obs,
                ledger=ledger,
            )
            for entry in server.datasets():
                line = (
                    f"resident: {entry.name} "
                    f"({entry.fingerprint['n_transactions']} transactions, "
                    f"{entry.fingerprint['n_items']} items, "
                    f"packed {entry.packed_bytes} bytes)"
                )
                if entry.index is not None:
                    line += (
                        f" + index (floor={entry.index.floor}, "
                        f"n_closed={entry.index.n_closed})"
                    )
                print(line)

            async def _run() -> None:
                await server.start()
                print(
                    f"serving on http://{server.host}:{server.port} "
                    f"(endpoints: {', '.join(server.router.paths())})",
                    flush=True,
                )
                loop = asyncio.get_running_loop()
                stop = asyncio.Event()
                for sig in (signal.SIGINT, signal.SIGTERM):
                    loop.add_signal_handler(sig, stop.set)
                serving = asyncio.ensure_future(server.serve_forever())
                try:
                    await stop.wait()
                finally:
                    serving.cancel()
                    await asyncio.gather(serving, return_exceptions=True)
                    await server.aclose()

            try:
                asyncio.run(_run())
            except KeyboardInterrupt:
                pass
            print("serve: shut down cleanly")
    except (ConfigurationError, OSError) as exc:
        raise SystemExit(f"error: {exc}") from None
    finally:
        _finish_obs(args, obs)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel frequent itemset mining "
        "(CLUSTER 2011 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    mine_cmd = sub.add_parser("mine", help="mine frequent (or closed) itemsets")
    _add_common(mine_cmd)
    mine_cmd.add_argument(
        "-a", "--algorithm", choices=sorted(available_algorithms()),
        default="eclat",
    )
    mine_cmd.add_argument(
        "-r", "--representation",
        choices=list(_MINE_REPRESENTATIONS),
        default="auto",
        help="vertical format; 'auto' lets the engine pick per backend/data",
    )
    mine_cmd.add_argument(
        "-b", "--backend", choices=available_backends(), default="serial",
        help="execution backend (see repro.engine.supported_combinations)",
    )
    mine_cmd.add_argument("-t", "--top", type=int, default=10,
                          help="print the N most frequent itemsets")
    mine_cmd.add_argument(
        "-w", "--workers", type=int, default=None, metavar="N",
        help="worker count for parallel backends (default: cpu count)",
    )
    mine_cmd.add_argument(
        "--schedule", default=None, metavar="KIND[,CHUNK]",
        help="loop schedule for parallel backends: static, dynamic, guided "
             "or worksteal (e.g. 'dynamic,1', 'worksteal')",
    )
    mine_cmd.add_argument(
        "--spawn-depth", type=int, default=None, metavar="D",
        help="worksteal only: deepest prefix length still spawned as "
             "stealable tasks (default 2; 0 = top-level dispatch only)",
    )
    mine_cmd.add_argument(
        "--spawn-min", type=int, default=None, metavar="M",
        help="worksteal only: smallest class size worth spawning "
             "(default 3)",
    )
    mine_cmd.add_argument(
        "--out-of-core", action="store_true",
        help="SON two-phase partitioned mining: stream the FIMI file in "
             "bounded-memory partitions instead of loading it (results "
             "are bit-identical to the in-memory run)",
    )
    mine_cmd.add_argument(
        "--max-memory-bytes", type=int, default=None, metavar="BYTES",
        help="out-of-core only: per-partition memory budget; the planner "
             "picks the smallest partition count whose chunks fit",
    )
    mine_cmd.add_argument(
        "--partitions", type=int, default=None, metavar="P",
        help="out-of-core only: explicit partition count (overrides the "
             "budget-derived plan)",
    )
    _add_obs_flags(mine_cmd)
    _add_ledger_flags(mine_cmd)
    _add_live_flags(mine_cmd)
    mine_cmd.set_defaults(func=cmd_mine)

    rules = sub.add_parser("rules", help="association rules (FP-growth)")
    _add_common(rules)
    rules.add_argument("-c", "--min-confidence", type=float, default=0.6)
    rules.add_argument("-t", "--top", type=int, default=10)
    rules.set_defaults(func=cmd_rules)

    index_cmd = sub.add_parser(
        "index",
        help="build / query / inspect the closed-itemset index artifact",
    )
    index_sub = index_cmd.add_subparsers(dest="index_command", required=True)

    ibuild = index_sub.add_parser(
        "build", help="mine once at a low floor and persist the index"
    )
    ibuild.add_argument("dataset", help="FIMI file path or dataset name")
    ibuild.add_argument("output", help="index artifact path to write")
    ibuild.add_argument(
        "-s", "--min-support", type=_parse_support, default=0.01,
        help="support floor: the lowest support the index can later "
             "answer at (absolute count >= 1 or fraction < 1; default 0.01)",
    )
    _add_obs_flags(ibuild)
    _add_ledger_flags(ibuild)
    ibuild.set_defaults(func=cmd_index_build)

    iquery = index_sub.add_parser(
        "query", help="answer support queries from a persisted index"
    )
    iquery.add_argument("index", help="index artifact path")
    iquery.add_argument(
        "-s", "--min-support", type=_parse_support, default=None,
        help="support threshold for the query (default: the index floor)",
    )
    iquery.add_argument(
        "-t", "--top", type=int, default=10,
        help="print the N most frequent itemsets",
    )
    iquery.add_argument(
        "--itemset", metavar="ITEMS", default=None,
        help="space-separated items: print this itemset's exact support",
    )
    iquery.add_argument(
        "--rules", action="store_true",
        help="emit association rules instead of an itemset listing",
    )
    iquery.add_argument(
        "-c", "--min-confidence", type=float, default=0.6,
        help="confidence threshold for --rules (default 0.6)",
    )
    _add_ledger_flags(iquery)
    iquery.set_defaults(func=cmd_index_query)

    iinfo = index_sub.add_parser(
        "info", help="dump the index artifact header as JSON"
    )
    iinfo.add_argument("index", help="index artifact path")
    iinfo.set_defaults(func=cmd_index_info)

    scal = sub.add_parser(
        "scalability", help="simulated Blacklight thread sweep"
    )
    _add_common(scal)
    scal.add_argument(
        "-a", "--algorithm", choices=["apriori", "eclat"], default="eclat"
    )
    scal.add_argument(
        "-r", "--representation",
        choices=["tidset", "bitvector", "bitvector_numpy", "diffset"],
        default="diffset",
    )
    scal.add_argument("--max-threads", type=int, default=1024)
    _add_obs_flags(scal)
    _add_ledger_flags(scal)
    scal.set_defaults(func=cmd_scalability)

    prof = sub.add_parser(
        "profile",
        help="instrumented scalability study + metrics report",
    )
    _add_common(prof)
    prof.add_argument(
        "-a", "--algorithm", choices=["apriori", "eclat"], default="eclat"
    )
    prof.add_argument(
        "-r", "--representation",
        choices=["tidset", "bitvector", "bitvector_numpy", "diffset"],
        default="diffset",
    )
    prof.add_argument("--max-threads", type=int, default=1024)
    prof.add_argument(
        "--threads", type=int, default=None,
        help="thread count to profile the replay at (default: the largest)",
    )
    prof.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write a Chrome trace-event JSON (load in ui.perfetto.dev)",
    )
    _add_ledger_flags(prof)
    prof.set_defaults(func=cmd_profile)

    serve = sub.add_parser(
        "serve",
        help="mining-as-a-service: resident datasets behind an HTTP API",
        description=(
            "Load datasets (and optional index artifacts) once, keep them "
            "resident, and answer POST /mine, /topk, /rules plus "
            "GET /healthz, /stats until interrupted.  Requests are "
            "admitted against a bounded inflight depth (excess sheds with "
            "429 + Retry-After), cached by the ledger's (dataset, config) "
            "identity, and identical concurrent queries coalesce onto one "
            "backend run."
        ),
    )
    serve.add_argument(
        "datasets", nargs="+",
        help="FIMI file paths or dataset names to keep resident",
    )
    serve.add_argument(
        "--index", action="append", metavar="ARTIFACT",
        help="index artifact to attach (must match a resident dataset; "
             "repeatable)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8737,
        help="listen port (0 picks a free one); default 8737",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=8,
        help="queries admitted concurrently before shedding (default 8)",
    )
    serve.add_argument(
        "--deadline-seconds", type=float, default=30.0,
        help="default per-request deadline (default 30)",
    )
    serve.add_argument(
        "--retry-after-seconds", type=float, default=1.0,
        help="Retry-After hint attached to shed (429) responses",
    )
    serve.add_argument(
        "--cache-entries", type=int, default=256,
        help="answer-cache capacity (0 disables caching)",
    )
    serve.add_argument(
        "--executor-workers", type=int, default=None,
        help="backend thread-pool width (default: --max-inflight)",
    )
    _add_obs_flags(serve)
    _add_ledger_flags(serve)
    serve.set_defaults(func=cmd_serve)

    obs_cmd = sub.add_parser(
        "obs",
        help="observability tools: tail / report / compare / watch / gc",
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)

    tail = obs_sub.add_parser("tail", help="print the most recent run records")
    tail.add_argument("-n", type=int, default=10,
                      help="how many records (default 10)")
    tail.add_argument("-f", "--follow", action="store_true",
                      help="keep polling and print new records as they land")
    tail.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                      help="polling interval for --follow (default 0.5)")
    tail.add_argument("--ledger-dir", metavar="DIR", default=None,
                      help="run-ledger directory (default: .repro/runs)")
    tail.set_defaults(func=cmd_obs_tail)

    watch = obs_sub.add_parser(
        "watch", help="live progress/heartbeat/ETA view of one run"
    )
    watch.add_argument(
        "run",
        help="live run-id prefix, or a negative index (-1 = most recent)",
    )
    watch.add_argument("--interval", type=float, default=0.5,
                       metavar="SECONDS",
                       help="refresh interval (default 0.5)")
    watch.add_argument("--once", action="store_true",
                       help="render a single frame and exit")
    watch.add_argument("--live-dir", metavar="DIR", default=None,
                       help="live status-file directory (default: .repro/live)")
    watch.set_defaults(func=cmd_obs_watch)

    gc = obs_sub.add_parser(
        "gc", help="cap the run ledger and the live status directory"
    )
    gc.add_argument("--keep", type=int, default=500, metavar="N",
                    help="ledger records to keep (default 500)")
    gc.add_argument("--live-keep", type=int, default=50, metavar="N",
                    help="live status files to keep (default 50)")
    gc.add_argument("--ledger-dir", metavar="DIR", default=None,
                    help="run-ledger directory (default: .repro/runs)")
    gc.add_argument("--live-dir", metavar="DIR", default=None,
                    help="live status-file directory (default: .repro/live)")
    gc.set_defaults(func=cmd_obs_gc)

    report = obs_sub.add_parser("report", help="dump one run record as JSON")
    report.add_argument(
        "run", help="run-id prefix, or a negative index (-1 = latest)"
    )
    report.add_argument("--ledger-dir", metavar="DIR", default=None,
                        help="run-ledger directory (default: .repro/runs)")
    report.set_defaults(func=cmd_obs_report)

    comp = obs_sub.add_parser(
        "compare",
        help="diff two runs / BENCH files; exit 1 on regression "
             "(2 = incomparable under --strict)",
    )
    comp.add_argument(
        "baseline", help="JSON file, run-id prefix, or negative index"
    )
    comp.add_argument(
        "current", help="JSON file, run-id prefix, or negative index"
    )
    comp.add_argument(
        "--threshold", type=float, default=0.25,
        help="relative slowdown that counts as a regression (default 0.25)",
    )
    comp.add_argument(
        "--ratios-only", action="store_true",
        help="compare only machine-independent ratio metrics (speedups); "
             "use when baseline and current ran on different machines",
    )
    comp.add_argument(
        "--strict", action="store_true",
        help="exit 2 instead of 0 when the records are not comparable",
    )
    comp.add_argument(
        "--metric", action="append", metavar="NAME",
        help="restrict to exact metric name(s); repeatable",
    )
    comp.add_argument("--ledger-dir", metavar="DIR", default=None,
                      help="run-ledger directory (default: .repro/runs)")
    comp.set_defaults(func=cmd_obs_compare)

    anat = obs_sub.add_parser(
        "anatomy",
        help="per-phase self-time attribution + critical path of a trace",
    )
    anat.add_argument(
        "trace", help="trace file (Chrome trace JSON or JSONL)"
    )
    anat.add_argument(
        "--check", action="store_true",
        help="verify the self-time-sums-to-wall invariant and the "
             "speedscope export; exit 1 on violation",
    )
    anat.add_argument(
        "--tolerance", type=float, default=0.02,
        help="relative tolerance for --check (default 0.02)",
    )
    anat.add_argument(
        "--json", action="store_true",
        help="print the anatomy summary as JSON instead of the report",
    )
    anat.set_defaults(func=cmd_obs_anatomy)

    flame = obs_sub.add_parser(
        "flame", help="export a trace as a flamegraph"
    )
    flame.add_argument(
        "trace", help="trace file (Chrome trace JSON or JSONL)"
    )
    flame.add_argument(
        "--format", choices=("speedscope", "collapsed"),
        default="speedscope",
        help="speedscope evented JSON (default) or collapsed stacks",
    )
    flame.add_argument(
        "-o", "--output", metavar="FILE", default=None,
        help="output path (default: <trace stem>.speedscope.json / "
             ".collapsed.txt)",
    )
    flame.set_defaults(func=cmd_obs_flame)

    expl = obs_sub.add_parser(
        "explain",
        help="attribute the wall-clock delta between two runs per "
             "phase bucket (compute/steal/ipc/io/idle)",
    )
    expl.add_argument(
        "baseline",
        help="trace file, run-id prefix, or negative index (-1 = latest)",
    )
    expl.add_argument(
        "current",
        help="trace file, run-id prefix, or negative index",
    )
    expl.add_argument("--ledger-dir", metavar="DIR", default=None,
                      help="run-ledger directory (default: .repro/runs)")
    expl.set_defaults(func=cmd_obs_explain)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
