"""Command-line interface: ``python -m repro <command>``.

Three subcommands cover the common workflows:

* ``mine``      — frequent itemsets from a FIMI file or a named surrogate;
* ``rules``     — association rules on top of a mining run;
* ``scalability`` — the paper pipeline: trace a miner, replay it on the
  simulated Blacklight across thread counts, print the table and chart.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.charts import speedup_chart
from repro.analysis.tables import render_runtime_table, render_speedup_series
from repro.core import apriori, eclat, fpgrowth
from repro.core.charm import charm
from repro.datasets import available_datasets, get_dataset, read_fimi
from repro.datasets.transaction_db import TransactionDatabase
from repro.machine.topology import standard_thread_counts
from repro.parallel import run_scalability_study, runtime_table, speedup_series
from repro.rules import generate_rules

_MINERS = {
    "apriori": apriori,
    "eclat": eclat,
    "fpgrowth": lambda db, sup, _rep: fpgrowth(db, sup),
    "charm": lambda db, sup, _rep: charm(db, sup),
}


def _load_database(source: str) -> TransactionDatabase:
    """A path loads a FIMI file; otherwise the name hits the registry."""
    path = Path(source)
    if path.exists():
        return read_fimi(path)
    if source in available_datasets():
        return get_dataset(source)
    raise SystemExit(
        f"error: {source!r} is neither a file nor a dataset name "
        f"(available: {', '.join(available_datasets())})"
    )


def _parse_support(text: str) -> float | int:
    value = float(text)
    if value >= 1 and value == int(value):
        return int(value)
    return value


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("dataset", help="FIMI file path or dataset name")
    parser.add_argument(
        "-s", "--min-support", type=_parse_support, default=0.5,
        help="absolute count (>= 1) or relative fraction (< 1); default 0.5",
    )


def cmd_mine(args: argparse.Namespace) -> int:
    db = _load_database(args.dataset)
    miner = _MINERS[args.algorithm]
    result = miner(db, args.min_support, args.representation)
    print(result.summary())
    if args.top:
        ranked = sorted(
            result.itemsets.items(), key=lambda kv: (-kv[1], kv[0])
        )[: args.top]
        for items, support in ranked:
            print(f"  {{{','.join(map(str, items))}}}: {support}")
    return 0


def cmd_rules(args: argparse.Namespace) -> int:
    db = _load_database(args.dataset)
    result = fpgrowth(db, args.min_support)
    rules = generate_rules(result, min_confidence=args.min_confidence)
    print(f"{len(rules)} rules at confidence >= {args.min_confidence}")
    for rule in rules[: args.top]:
        print(f"  {rule}")
    return 0


def cmd_scalability(args: argparse.Namespace) -> int:
    db = _load_database(args.dataset)
    counts = standard_thread_counts(args.max_threads)
    study = run_scalability_study(
        db, args.algorithm, args.representation, args.min_support,
        thread_counts=counts,
    )
    print(study.mining_result.summary())
    print()
    print(
        render_runtime_table(
            runtime_table([study], "simulated runtime (seconds)")
        )
    )
    series = speedup_series([study])
    print()
    print(render_speedup_series(series, title="speedup vs one thread"))
    print()
    print(speedup_chart(series, title="speedup curve"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel frequent itemset mining "
        "(CLUSTER 2011 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    mine = sub.add_parser("mine", help="mine frequent (or closed) itemsets")
    _add_common(mine)
    mine.add_argument(
        "-a", "--algorithm", choices=sorted(_MINERS), default="eclat"
    )
    mine.add_argument(
        "-r", "--representation",
        choices=["tidset", "bitvector", "diffset", "hybrid"],
        default="tidset",
    )
    mine.add_argument("-t", "--top", type=int, default=10,
                      help="print the N most frequent itemsets")
    mine.set_defaults(func=cmd_mine)

    rules = sub.add_parser("rules", help="association rules (FP-growth)")
    _add_common(rules)
    rules.add_argument("-c", "--min-confidence", type=float, default=0.6)
    rules.add_argument("-t", "--top", type=int, default=10)
    rules.set_defaults(func=cmd_rules)

    scal = sub.add_parser(
        "scalability", help="simulated Blacklight thread sweep"
    )
    _add_common(scal)
    scal.add_argument(
        "-a", "--algorithm", choices=["apriori", "eclat"], default="eclat"
    )
    scal.add_argument(
        "-r", "--representation",
        choices=["tidset", "bitvector", "diffset"], default="diffset",
    )
    scal.add_argument("--max-threads", type=int, default=1024)
    scal.set_defaults(func=cmd_scalability)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
