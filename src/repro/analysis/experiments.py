"""Experiment records: structured results with JSON persistence.

Every bench can persist what it measured as an :class:`ExperimentRecord`;
EXPERIMENTS.md is generated from these records so the documentation never
drifts from the code.  Records are plain JSON on disk — diff-able and
tool-friendly.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError
from repro.parallel.runner import ScalabilityStudy


@dataclass
class SeriesRecord:
    """One curve: a labelled {threads: value} mapping."""

    label: str
    thread_counts: list[int]
    runtimes_seconds: list[float]
    speedups: list[float]


@dataclass
class ExperimentRecord:
    """One experiment's full output (one table + one figure)."""

    experiment_id: str
    title: str
    algorithm: str
    representation: str
    machine: str
    series: list[SeriesRecord] = field(default_factory=list)
    notes: dict[str, object] = field(default_factory=dict)

    def add_study(self, study: ScalabilityStudy) -> None:
        ups = study.speedups()
        self.series.append(
            SeriesRecord(
                label=study.label(),
                thread_counts=list(study.thread_counts),
                runtimes_seconds=[study.runtime(t) for t in study.thread_counts],
                speedups=[ups[t] for t in study.thread_counts],
            )
        )

    def peak_speedups(self) -> dict[str, float]:
        return {s.label: max(s.speedups) for s in self.series}

    def final_speedups(self) -> dict[str, float]:
        return {s.label: s.speedups[-1] for s in self.series}

    # -- persistence ------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(asdict(self), indent=2, sort_keys=True))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentRecord":
        raw = json.loads(Path(path).read_text())
        series = [SeriesRecord(**s) for s in raw.pop("series", [])]
        record = cls(**{k: v for k, v in raw.items() if k != "series"})
        record.series = series
        return record


def from_studies(
    experiment_id: str,
    title: str,
    studies: list[ScalabilityStudy],
    notes: dict[str, object] | None = None,
) -> ExperimentRecord:
    """Bundle a set of same-shape studies into one record."""
    if not studies:
        raise ConfigurationError("need at least one study")
    algos = {s.algorithm for s in studies}
    reps = {s.representation for s in studies}
    record = ExperimentRecord(
        experiment_id=experiment_id,
        title=title,
        algorithm=algos.pop() if len(algos) == 1 else "mixed",
        representation=reps.pop() if len(reps) == 1 else "mixed",
        machine=studies[0].machine,
        notes=notes or {},
    )
    for study in studies:
        record.add_study(study)
    return record
