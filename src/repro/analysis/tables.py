"""ASCII rendering of the paper-style tables and speedup series.

The benches print through these helpers so that every table carries the
same layout the paper uses: runtime tables with ``dataset@support`` rows
and thread-count columns (Tables II-V), and speedup series per dataset
(the data behind Figures 5-8).
"""

from __future__ import annotations

from typing import Sequence

from repro.parallel.speedup import RuntimeTable, SpeedupSeries


def format_seconds(seconds: float) -> str:
    """Compact fixed-width time formatting (matches the tables' feel)."""
    if seconds >= 100:
        return f"{seconds:.0f}"
    if seconds >= 1:
        return f"{seconds:.2f}"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}m"
    return f"{seconds * 1e6:.0f}u"


def render_grid(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = ""
) -> str:
    """Monospace grid with column alignment."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_runtime_table(table: RuntimeTable) -> str:
    """The Table II-V layout: rows = dataset@support, columns = threads.

    Times are simulated seconds on the modelled machine.
    """
    headers = ["dataset@sup"] + [str(t) for t in table.thread_counts]
    rows = [
        [label] + [format_seconds(v) for v in values]
        for label, values in table.rows
    ]
    return render_grid(headers, rows, title=table.title)


def render_speedup_series(
    series: list[SpeedupSeries], title: str = ""
) -> str:
    """The Figure 5-8 data: speedup relative to one thread per dataset."""
    if not series:
        return title
    counts = series[0].thread_counts
    headers = ["dataset@sup"] + [str(t) for t in counts]
    rows = [
        [s.label] + [f"{v:.1f}" for v in s.speedups]
        for s in series
    ]
    return render_grid(headers, rows, title=title)


def render_metrics_report(registry, title: str = "metrics") -> str:
    """Render a :class:`repro.obs.MetricsRegistry` as an aligned grid.

    The registry supplies its own rows (``report_rows``) so this stays a
    pure formatting concern; counters show their value, histograms their
    count / mean / p50 / p99 summary.
    """
    rows = registry.report_rows()
    if not rows:
        return f"{title}\n  (no metrics recorded)"
    return render_grid(registry.REPORT_HEADERS, rows, title=title)


def render_dataset_stats(rows: list[tuple], title: str = "TABLE I") -> str:
    """Table I layout: dataset, items, avg length, transactions, size."""
    headers = ["Dataset", "Items", "AvgLen", "Transactions", "Size"]
    return render_grid(
        headers, [[str(c) for c in row] for row in rows], title=title
    )


def render_top_itemsets(
    source, k: int, *, min_support: float | int | None = None
) -> str:
    """The CLI's ranked itemset listing, off any ``Queryable`` source.

    ``source`` is anything implementing
    :class:`repro.core.queryable.Queryable` — a fresh
    :class:`~repro.core.result.MiningResult` or a persisted
    :class:`repro.index.ItemsetIndex`; the listing is identical either
    way (descending support, lexicographic ties).
    """
    return "\n".join(
        f"  {{{','.join(map(str, items))}}}: {support}"
        for items, support in source.top_k(k, min_support=min_support)
    )
