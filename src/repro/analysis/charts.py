"""Terminal charts for speedup curves (the figures, without matplotlib).

The paper's Figures 5-8 plot speedup against thread count per dataset.
:func:`speedup_chart` renders the same thing as a monospace scatter/line
grid so the benches and examples can show curve *shape* directly in a
terminal or log file, offline.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.parallel.speedup import SpeedupSeries

#: Glyphs assigned to series, in order.
SERIES_GLYPHS = "ox*+#@%&"


def sparkline(values: list[float], width: int | None = None) -> str:
    """One-line trend glyphs for a series (8-level resolution)."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = hi - lo
    if span == 0:
        return blocks[0] * len(values)
    return "".join(
        blocks[min(7, int((v - lo) / span * 8))] for v in values
    )


def speedup_chart(
    series: list[SpeedupSeries],
    height: int = 12,
    title: str = "",
) -> str:
    """A monospace chart of speedup-vs-threads curves.

    The x axis is the (log-spaced) thread counts in sweep order; the y
    axis is linear speedup.  Each series gets a glyph; collisions show the
    later series' glyph.
    """
    if height < 3:
        raise ConfigurationError("height must be >= 3")
    if not series:
        return title
    counts = series[0].thread_counts
    for s in series:
        if s.thread_counts != counts:
            raise ConfigurationError("all series must share thread counts")

    peak = max(max(s.speedups) for s in series)
    peak = max(peak, 1e-9)
    n_cols = len(counts)
    col_width = 6
    grid = [[" "] * (n_cols * col_width) for _ in range(height)]

    for idx, s in enumerate(series):
        glyph = SERIES_GLYPHS[idx % len(SERIES_GLYPHS)]
        for col, value in enumerate(s.speedups):
            row = height - 1 - int(value / peak * (height - 1))
            grid[row][col * col_width + col_width // 2] = glyph

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_value = peak * (height - 1 - i) / (height - 1)
        lines.append(f"{y_value:6.1f} |" + "".join(row))
    axis = "-" * (n_cols * col_width)
    lines.append(" " * 7 + "+" + axis)
    labels = "".join(str(t).center(col_width) for t in counts)
    lines.append(" " * 8 + labels)
    legend = "   ".join(
        f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]}={s.label}"
        for i, s in enumerate(series)
    )
    lines.append(" " * 8 + legend)
    return "\n".join(lines)
