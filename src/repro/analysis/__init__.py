"""Performance analysis, table rendering, and experiment records."""

from repro.analysis.metrics import (
    efficiency,
    karp_flatt,
    karp_flatt_series,
    speedup,
)
from repro.analysis.tables import (
    format_seconds,
    render_dataset_stats,
    render_grid,
    render_runtime_table,
    render_speedup_series,
    render_top_itemsets,
)
from repro.analysis.charts import sparkline, speedup_chart
from repro.analysis.experiments import (
    ExperimentRecord,
    SeriesRecord,
    from_studies,
)

__all__ = [
    "speedup",
    "efficiency",
    "karp_flatt",
    "karp_flatt_series",
    "format_seconds",
    "render_grid",
    "render_runtime_table",
    "render_speedup_series",
    "render_dataset_stats",
    "render_top_itemsets",
    "sparkline",
    "speedup_chart",
    "ExperimentRecord",
    "SeriesRecord",
    "from_studies",
]
