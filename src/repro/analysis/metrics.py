"""Parallel-performance metrics: speedup, efficiency, Karp-Flatt.

Small, dependency-free helpers shared by the benches and examples; each
works on plain ``{thread_count: seconds}`` mappings so they compose with
both simulated and wall-clock measurements.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def speedup(times: dict[int, float], baseline_threads: int = 1) -> dict[int, float]:
    """Speedup of each point relative to the baseline thread count."""
    if baseline_threads not in times:
        raise ConfigurationError(
            f"baseline {baseline_threads} not in measured thread counts"
        )
    base = times[baseline_threads]
    out: dict[int, float] = {}
    for threads, seconds in times.items():
        if seconds <= 0:
            raise ConfigurationError(f"non-positive time at {threads} threads")
        out[threads] = base / seconds
    return out


def efficiency(times: dict[int, float], baseline_threads: int = 1) -> dict[int, float]:
    """Parallel efficiency: speedup divided by thread count."""
    ups = speedup(times, baseline_threads)
    return {t: s / t for t, s in ups.items()}


def karp_flatt(observed_speedup: float, n_threads: int) -> float:
    """Karp-Flatt experimentally determined serial fraction.

    ``e = (1/S - 1/T) / (1 - 1/T)``.  A rising ``e`` across thread counts
    indicates overhead growth (communication), not just Amdahl serialism —
    exactly the diagnostic that separates the paper's Apriori-tidset curve
    (rising e) from Apriori-diffset (flat-ish e).
    """
    if n_threads <= 1:
        raise ConfigurationError("Karp-Flatt needs more than one thread")
    if observed_speedup <= 0:
        raise ConfigurationError("speedup must be positive")
    return (1.0 / observed_speedup - 1.0 / n_threads) / (1.0 - 1.0 / n_threads)


def karp_flatt_series(
    times: dict[int, float], baseline_threads: int = 1
) -> dict[int, float]:
    """Karp-Flatt fraction at each measured multi-thread point."""
    ups = speedup(times, baseline_threads)
    return {
        t: karp_flatt(s, t)
        for t, s in ups.items()
        if t > 1
    }


def scaled_down_note(paper_value: float, measured: float) -> str:
    """One-line comparison phrase used by EXPERIMENTS.md generators."""
    if paper_value <= 0:
        return f"measured {measured:.1f} (paper value unavailable)"
    ratio = measured / paper_value
    return f"measured {measured:.1f} vs paper {paper_value:.1f} ({ratio:.2f}x)"
